#include "placer/global_placer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>

#include "common/logger.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/validate.h"

namespace dtp::placer {

using netlist::CellId;

const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::Converged: return "converged";
    case StopReason::MaxIters: return "max_iters";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Paused: return "paused";
    case StopReason::TimeBudget: return "time_budget";
    case StopReason::Aborted: return "aborted";
  }
  return "?";
}

GlobalPlacer::GlobalPlacer(netlist::Design& design, const sta::TimingGraph& graph,
                           GlobalPlacerOptions options)
    : design_(&design), graph_(&graph), options_(options) {
  if (options_.robust.enabled) {
    robust::ValidationReport report = robust::validate(design);
    if (!report.ok()) throw robust::ValidationError(std::move(report));
    if (report.num_warnings() > 0)
      DTP_LOG_DEBUG("design validation: %zu warning(s)\n%s",
                    report.num_warnings(), report.to_string().c_str());
  }
  wl_ = std::make_unique<WirelengthModel>(design, options_.ignore_net_degree);
  const int bins = options_.bins > 0 ? options_.bins : auto_bins();
  density_ = std::make_unique<DensityModel>(design, bins, options_.target_density);
  if (options_.use_adam)
    optimizer_ = std::make_unique<AdamOptimizer>(options_.adam_lr_bins *
                                                 density_->bin_w());
  else
    optimizer_ = std::make_unique<NesterovOptimizer>();

  if (options_.mode == PlacerMode::DiffTiming) {
    dtimer::DiffTimerOptions dopts;
    dopts.gamma = options_.gamma_timing;
    dopts.steiner_rebuild_period = options_.steiner_period;
    dopts.rsmt = options_.rsmt;
    dopts.wire_model = options_.wire_model;
    diff_timer_ = std::make_unique<dtimer::DiffTimer>(design, graph, dopts);
  }
  // Path records come from an exact (hard) signoff timer — never the smoothed
  // differentiable one — so introspection may need one even in modes that
  // would not otherwise build it.
  const bool want_paths = options_.introspect_sink != nullptr &&
                          options_.introspect.paths_topk > 0;
  if (options_.mode == PlacerMode::NetWeighting ||
      options_.probe_timing_every > 0 || want_paths) {
    exact_timer_ = std::make_unique<sta::Timer>(design, graph);
    if (options_.mode == PlacerMode::NetWeighting)
      net_weighting_ = std::make_unique<NetWeighting>(design, graph, options_.nw);
  }
  if (options_.introspect_sink != nullptr) {
    // Per-level kernel profiling for the kernel_profile records.  Timing only;
    // never observable in the placement trajectory.
    if (diff_timer_ != nullptr) diff_timer_->set_level_profiling(true);
    if (exact_timer_ != nullptr) exact_timer_->set_level_profiling(true);
  }
  if (options_.activity_sink != nullptr && options_.activity_sink->is_open() &&
      options_.activity.sample_period > 0) {
    // Activity layer (DESIGN.md §11): tracker on the timer the mode actually
    // descends with — the smooth timer in DiffTiming (forward + backward
    // adjoints), the exact timer in NetWeighting (forward only).
    activity_tracker_ = std::make_unique<obs::ActivityTracker>();
    activity_tracker_->set_epsilons(options_.activity.at_epsilon,
                                    options_.activity.slew_epsilon,
                                    options_.activity.adjoint_epsilon);
    if (diff_timer_ != nullptr)
      diff_timer_->set_activity_tracker(activity_tracker_.get());
    else if (exact_timer_ != nullptr)
      exact_timer_->set_activity_tracker(activity_tracker_.get());
    slack_sketch_.set_band_width(options_.activity.band_width);
    churn_tracker_.configure(
        graph.endpoints().size(),
        static_cast<size_t>(std::max(1, options_.activity.churn_top_k)));
  }
}

int GlobalPlacer::auto_bins() const {
  size_t movable = 0;
  for (size_t c = 0; c < design_->netlist.num_cells(); ++c)
    if (!design_->netlist.cell(static_cast<CellId>(c)).fixed) ++movable;
  int m = 16;
  while (m * m < static_cast<int>(movable) && m < 256) m *= 2;
  return m;
}

void GlobalPlacer::update_wl_gamma(double overflow) {
  // RePlAce-style schedule: heavy smoothing while dense, sharp when spread.
  const double bw = density_->bin_w();
  const double k = 20.0 / 9.0;
  const double gamma = 8.0 * bw * std::pow(10.0, k * (overflow - 0.1) - 1.0);
  wl_->set_gamma(std::clamp(gamma, 0.1 * bw, 80.0 * bw));
}

PlaceResult GlobalPlacer::run() {
  DTP_TRACE_SCOPE("global_place");
  Stopwatch total_clock;

  // Per-phase accumulators live in the process-wide registry so every placer
  // run in a process feeds the same histograms; the per-run PhaseBreakdown is
  // recovered as the sum-delta across this run.
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& iter_count = registry.counter("placer.iterations");
  static obs::Histogram& h_wl = registry.histogram("placer.wirelength_ms");
  static obs::Histogram& h_den = registry.histogram("placer.density_ms");
  static obs::Histogram& h_rsmt = registry.histogram("placer.rsmt_ms");
  static obs::Histogram& h_sta_f = registry.histogram("placer.sta_forward_ms");
  static obs::Histogram& h_sta_b = registry.histogram("placer.sta_backward_ms");
  static obs::Histogram& h_step = registry.histogram("placer.step_ms");
  const double sum0[6] = {h_wl.sum(),    h_den.sum(),   h_rsmt.sum(),
                          h_sta_f.sum(), h_sta_b.sum(), h_step.sum()};

  netlist::Netlist& nl = design_->netlist;
  const size_t n = nl.num_cells();
  auto& x = design_->cell_x;
  auto& y = design_->cell_y;
  const Rect& core = design_->floorplan.core;

  std::vector<char> movable(n, 0);
  std::vector<double> width(n, 0.0), height(n, 0.0), area(n, 0.0);
  for (size_t c = 0; c < n; ++c) {
    movable[c] = !nl.cell(static_cast<CellId>(c)).fixed;
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    width[c] = master.width;
    height[c] = master.height;
    area[c] = master.width * master.height;
  }
  double mean_area = 0.0;
  size_t n_mov = 0;
  for (size_t c = 0; c < n; ++c)
    if (movable[c]) {
      mean_area += area[c];
      ++n_mov;
    }
  mean_area /= std::max<size_t>(1, n_mov);

  PlaceResult result;
  if (n_mov == 0) {
    // All-fixed design: placement is a no-op.  Return instead of spinning
    // min_iters through kernels that have nothing to move.
    DTP_LOG_WARN("global placement: no movable cells, returning unchanged");
    result.hpwl = wl_->hpwl_unweighted(x, y);
    result.runtime_sec = total_clock.elapsed_sec();
    return result;
  }

  std::vector<double> g_wl_x(n), g_wl_y(n), g_den_x(n), g_den_y(n);
  std::vector<double> g_t_x(n), g_t_y(n), g_x(n), g_y(n);
  std::vector<double> precond = wl_->cell_incidence_weights();

  double lambda = 0.0;
  bool timing_active = false;
  double t_mix = options_.t1;
  double timing_scale = -1.0;  // frozen |WL|/|timing| ratio, set at activation
  double sta_time = 0.0;

  auto l1 = [&](const std::vector<double>& a, const std::vector<double>& b) {
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i]) + std::abs(b[i]);
    return s;
  };

  // ---- fault-tolerance layer (DESIGN.md §7) ----
  // On a healthy run every guard is a pure observer (scans + snapshots), so
  // the trajectory is bitwise-identical with guards on or off.
  robust::RecoveryController rc(options_.robust);
  const bool guards = options_.robust.enabled;
  robust::FaultInjector* inj =
      guards && rc.injector().armed() ? &rc.injector() : nullptr;
  static obs::Counter& ckpt_count = registry.counter("robust.checkpoints");
  robust::Checkpoint ckpt;
  robust::StateBlob opt_blob;
  int ckpt_ordinal = 0;

  // ---- resume from a sealed checkpoint (DESIGN.md §12) ----
  // The checkpoint carries positions, the four driver scalars, and the opaque
  // optimizer blob; the descent continues from the checkpointed iteration.
  int start_iter = 0;
  if (options_.resume_from != nullptr) {
    const robust::Checkpoint& rck = *options_.resume_from;
    if (!rck.verify())
      throw std::runtime_error(
          "resume checkpoint failed checksum verification");
    double scalars[4] = {0.0, 0.0, 0.0, 0.0};
    robust::StateBlob blob;
    if (rck.num_cells() != n || rck.num_scalars() != 4 ||
        !rck.restore(x, y, std::span<double>(scalars, 4), blob))
      throw std::runtime_error(
          "resume checkpoint does not match this design (size mismatch)");
    optimizer_->restore_state(blob);
    lambda = scalars[0];
    t_mix = scalars[1];
    timing_scale = scalars[2];
    timing_active = scalars[3] != 0.0;
    start_iter = std::max(0, rck.iter());
    DTP_LOG_INFO("resuming placement from checkpoint at iteration %d",
                 start_iter);
  }

  auto capture_checkpoint = [&](int at_iter) {
    // Never snapshot poisoned coordinates (a position fault lands at the end
    // of an iteration; the top-of-loop guard has not seen it yet).
    if (!robust::HealthMonitor::all_finite(x, y)) return;
    optimizer_->save_state(opt_blob);
    const double scalars[4] = {lambda, t_mix, timing_scale,
                               timing_active ? 1.0 : 0.0};
    ckpt.capture(at_iter, x, y, scalars, opt_blob);
    ckpt_count.add();
    if (inj != nullptr)
      inj->corrupt(robust::FaultSite::Checkpoint, ckpt_ordinal,
                   ckpt.mutable_x());  // sealed payload: verify() now fails
    ++ckpt_ordinal;
  };

  // Last-ditch recovery when no usable checkpoint exists: replace non-finite
  // coordinates with the core center and restart the optimizer.
  auto scrub_state = [&] {
    const double cx = 0.5 * (core.xl + core.xh);
    const double cy = 0.5 * (core.yl + core.yh);
    for (size_t c = 0; c < n; ++c) {
      if (!std::isfinite(x[c])) x[c] = cx;
      if (!std::isfinite(y[c])) y[c] = cy;
    }
    optimizer_->reset();
  };

  // Handles a detected fault: rollback + step-halving while the retry budget
  // lasts, clean abort (restore best-known state) once it is exhausted.
  // Returns false when the run must stop.
  auto handle_fault = [&](int at_iter, const char* kind,
                          std::string detail) -> bool {
    const auto action = rc.on_fault(at_iter, kind, std::move(detail));
    double scalars[4] = {lambda, t_mix, timing_scale,
                         timing_active ? 1.0 : 0.0};
    const bool ckpt_ok =
        ckpt.valid() && ckpt.restore(x, y, std::span<double>(scalars, 4),
                                     opt_blob);
    if (ckpt.valid() && !ckpt_ok) {
      rc.note_checkpoint_corrupt(at_iter);
      ckpt.invalidate();
    }
    if (action == robust::RecoveryController::Action::Abort) {
      if (!ckpt_ok) scrub_state();
      return false;
    }
    if (ckpt_ok) {
      optimizer_->restore_state(opt_blob);
      lambda = scalars[0];
      t_mix = scalars[1];
      timing_scale = scalars[2];
      timing_active = scalars[3] != 0.0;
    } else {
      scrub_state();
    }
    optimizer_->set_step_scale(rc.step_scale());
    rc.monitor().reset();
    return true;
  };

  // ---- timing introspection (DESIGN.md §8) ----
  // A pure observer: reads gradient/position state, runs the separate exact
  // timer for path records.  Disabled (null/closed sink) and enabled runs
  // produce bitwise-identical placements (tests/test_introspect.cpp).
  obs::IntrospectionSink* sink = options_.introspect_sink != nullptr &&
                                         options_.introspect_sink->is_open()
                                     ? options_.introspect_sink
                                     : nullptr;
  const std::string mode_name =
      options_.mode == PlacerMode::DiffTiming      ? "diff_timing"
      : options_.mode == PlacerMode::NetWeighting ? "net_weighting"
                                                  : "wirelength_only";
  if (sink != nullptr) sink->set_meta(design_->name, mode_name);

  // ---- timing-activity telemetry (DESIGN.md §11) ----
  // Also a pure observer; the tracker was attached to the mode's timer in the
  // constructor and only ever reads the finished AT/slew/adjoint planes.
  obs::IntrospectionSink* asink =
      options_.activity_sink != nullptr && options_.activity_sink->is_open() &&
              activity_tracker_ != nullptr
          ? options_.activity_sink
          : nullptr;
  if (asink != nullptr && asink != sink) asink->set_meta(design_->name, mode_name);
  int last_activity_iter = -1;
  auto emit_activity = [&](int at_iter) {
    if (asink == nullptr || !activity_tracker_->configured() ||
        activity_tracker_->forward_evals() == 0)
      return;
    const sta::Timer& at_timer =
        diff_timer_ != nullptr ? diff_timer_->timer() : *exact_timer_;
    slack_sketch_.observe_epoch(at_timer.endpoint_slack());
    churn_tracker_.observe(at_timer.endpoint_slack());
    asink->write_activity(at_iter, *activity_tracker_, slack_sketch_,
                          churn_tracker_);
    activity_accum_.observe(at_iter, activity_tracker_->fwd_active_fraction(),
                            activity_tracker_->bwd_live_fraction(),
                            churn_tracker_.jaccard(), slack_sketch_.wns(),
                            slack_sketch_.p50());
    last_activity_iter = at_iter;
  };
  double combine_lambda = 0.0;  // the lambda the combine loop actually used
  size_t clip_clipped = 0, clip_nonzero = 0;  // this iteration's trust region
  std::string pending_trigger;  // robust-layer decision awaiting attribution
  int last_emit_iter = -1;
  double last_wns = 0.0, last_tns = 0.0;
  bool seen_timing = false;

  auto emit_attribution = [&](int at_iter, const std::string& trigger) {
    if (sink == nullptr) return;
    obs::GradArrays ga;
    ga.wl_x = g_wl_x;
    ga.wl_y = g_wl_y;
    ga.den_x = g_den_x;
    ga.den_y = g_den_y;
    ga.t_x = g_t_x;
    ga.t_y = g_t_y;
    ga.total_x = g_x;
    ga.total_y = g_y;
    ga.precond = precond;
    ga.area = area;
    ga.movable = movable;
    ga.lambda = combine_lambda;
    ga.mean_area = mean_area;
    obs::GradAttribution attrib =
        obs::compute_grad_attribution(ga, options_.introspect.top_m_cells);
    attrib.timing_clipped = clip_clipped;
    attrib.timing_nonzero = clip_nonzero;
    sink->write_grad_attribution(at_iter, attrib, nl, trigger);
  };
  auto emit_introspection = [&](int at_iter) {
    if (sink == nullptr) return;
    last_emit_iter = at_iter;
    emit_attribution(at_iter, {});
    if (options_.introspect.paths_topk > 0 && exact_timer_ != nullptr) {
      exact_timer_->evaluate(x, y);  // hard-mode signoff pass for exact paths
      sink->write_paths(at_iter, *exact_timer_, options_.introspect.paths_topk);
    }
    std::vector<size_t> level_sizes(static_cast<size_t>(graph_->num_levels()));
    for (int l = 0; l < graph_->num_levels(); ++l)
      level_sizes[static_cast<size_t>(l)] = graph_->level(l).size();
    std::span<const sta::LevelStat> fwd, bwd;
    if (diff_timer_ != nullptr) {
      fwd = diff_timer_->timer().level_profile();
      bwd = diff_timer_->backward_level_profile();
    }
    // Before timing activates the differentiable timer has not run; the exact
    // signoff timer (which just timed the path pass) profiles instead.
    if (fwd.empty() && exact_timer_ != nullptr)
      fwd = exact_timer_->level_profile();
    sink->write_kernel_profile(at_iter, level_sizes, fwd, bwd);
  };

  int iter = start_iter;
  StopReason stop_reason = StopReason::MaxIters;
  // Set once the wall-clock budget (or an external degrade request) cuts
  // timing forces for the remainder of the run — cheaper iterations so the
  // run lands inside its budget with a valid placement.
  bool timing_cut = false;
  Stopwatch phase_clock;
  // Process-CPU time per phase (same order as PhaseBreakdown: wl, density,
  // rsmt, sta_fwd, sta_bwd, step).  Wall ms already flow through the metrics
  // histograms; CPU seconds accumulate here directly.
  double phase_cpu[6] = {0, 0, 0, 0, 0, 0};
  for (; iter < options_.max_iters; ++iter) {
    // ---- control plane: poll external requests between iterations, where
    // no kernel is mid-flight and state is consistent (DESIGN.md §12) ----
    if (options_.control != nullptr) {
      PlacerControl& ctl = *options_.control;
      ctl.current_iter.store(iter, std::memory_order_relaxed);
      if (ctl.cancel_at_iter >= 0 && iter >= ctl.cancel_at_iter)
        ctl.request_cancel();
      if (ctl.pause_at_iter >= 0 && iter >= ctl.pause_at_iter)
        ctl.request_pause();
      const uint32_t req = ctl.request.load(std::memory_order_acquire);
      if (req & PlacerControl::kCancel) {
        stop_reason = StopReason::Cancelled;
        break;
      }
      if (req & PlacerControl::kPause) {
        stop_reason = StopReason::Paused;
        break;
      }
      if ((req & PlacerControl::kDegradeTiming) && !timing_cut) {
        timing_cut = true;
        rc.record({iter, "timing_cut", "degrade", rc.step_scale(),
                   "external degrade request: timing forces dropped"});
      }
    }
    // ---- wall-clock budget: degrade, then stop — never a hard kill ----
    if (options_.time_budget_sec > 0.0) {
      const double elapsed = total_clock.elapsed_sec();
      if (elapsed >= options_.time_budget_sec) {
        stop_reason = StopReason::TimeBudget;
        rc.record({iter, "time_budget", "stop", rc.step_scale(),
                   "wall-clock budget exhausted; stopping with a valid "
                   "placement"});
        break;
      }
      if (!timing_cut && options_.mode != PlacerMode::WirelengthOnly &&
          elapsed >=
              options_.time_budget_degrade_frac * options_.time_budget_sec) {
        timing_cut = true;
        rc.record({iter, "time_budget", "degrade", rc.step_scale(),
                   "timing forces dropped to meet the wall-clock budget"});
      }
    }
    // ---- guard: coordinates must be finite before the kernels index bins
    // with them (a NaN position is undefined behaviour in the splatter) ----
    if (guards && !robust::HealthMonitor::all_finite(x, y)) {
      if (!handle_fault(iter, "nan_position", "non-finite cell coordinates")) {
        stop_reason = StopReason::Aborted;
        break;
      }
      continue;
    }
    if (guards && rc.should_checkpoint(iter)) capture_checkpoint(iter);

    IterationLog log;
    log.iter = iter;

    // ---- density field + overflow ----
    phase_clock.reset();
    const DensityStats ds = density_->update(x, y);
    log.density_ms = phase_clock.elapsed_ms();
    phase_cpu[1] += phase_clock.cpu_elapsed_sec();
    update_wl_gamma(ds.overflow);

    // ---- wirelength gradient ----
    phase_clock.reset();
    std::fill(g_wl_x.begin(), g_wl_x.end(), 0.0);
    std::fill(g_wl_y.begin(), g_wl_y.end(), 0.0);
    wl_->value_and_gradient(x, y, g_wl_x, g_wl_y);
    log.wl_grad_ms = phase_clock.elapsed_ms();
    phase_cpu[0] += phase_clock.cpu_elapsed_sec();

    // ---- density gradient (lambda-scaled inside) ----
    phase_clock.reset();
    std::fill(g_den_x.begin(), g_den_x.end(), 0.0);
    std::fill(g_den_y.begin(), g_den_y.end(), 0.0);
    if (lambda == 0.0) {
      // Initialize lambda so density force starts as a fixed fraction of the
      // wirelength force (ePlace's initialization).
      density_->add_gradient(x, y, 1.0, g_den_x, g_den_y);
      const double wl_norm = l1(g_wl_x, g_wl_y);
      const double den_norm = l1(g_den_x, g_den_y);
      lambda = den_norm > 1e-30
                   ? options_.lambda_init_ratio * wl_norm / den_norm
                   : 1.0;
      for (size_t c = 0; c < n; ++c) {
        g_den_x[c] *= lambda;
        g_den_y[c] *= lambda;
      }
    } else {
      density_->add_gradient(x, y, lambda, g_den_x, g_den_y);
    }
    log.density_ms += phase_clock.elapsed_ms();
    phase_cpu[1] += phase_clock.cpu_elapsed_sec();

    // ---- timing ----
    log.overflow = ds.overflow;
    log.lambda = lambda;
    if (!timing_active && options_.mode != PlacerMode::WirelengthOnly &&
        iter >= options_.timing_start_iter &&
        ds.overflow <= options_.timing_start_overflow) {
      timing_active = true;
      if (options_.verbose)
        DTP_LOG_INFO("timing optimization activated at iter %d (overflow %.3f)",
                     iter, ds.overflow);
    }

    std::fill(g_t_x.begin(), g_t_x.end(), 0.0);
    std::fill(g_t_y.begin(), g_t_y.end(), 0.0);
    clip_clipped = clip_nonzero = 0;
    bool precond_dirty = false;
    // Graceful degradation: while timing is suspended (repeated degenerate
    // backward passes) the placer runs on pure wirelength+density forces and
    // skips the timer entirely; the controller re-enables it after cooldown.
    const bool timing_suspended =
        (guards && timing_active && rc.timing_suspended(iter)) || timing_cut;
    if (timing_active && !timing_suspended &&
        options_.mode == PlacerMode::DiffTiming) {
      Stopwatch sta_clock;
      if (options_.gamma_timing_final > 0.0) {
        // Geometric gamma annealing across the timing phase.
        const double decay =
            std::pow(options_.gamma_timing_final / options_.gamma_timing,
                     1.0 / std::max(1, options_.gamma_anneal_iters));
        const double g = std::max(options_.gamma_timing_final,
                                  diff_timer_->timer().options().gamma * decay);
        diff_timer_->timer().set_gamma(g);
      }
      if (inj != nullptr) diff_timer_->set_fault_injection(inj, iter);
      phase_clock.reset();
      const auto tm = diff_timer_->forward(x, y);
      const double fwd_cpu = phase_clock.cpu_elapsed_sec();
      log.rsmt_ms = diff_timer_->last_forward().rsmt_ms;
      log.sta_fwd_ms = diff_timer_->last_forward().sta_ms();
      // Forward CPU split between rsmt and sta proportional to their wall
      // share (the timer reports wall ms per sub-phase, not CPU).
      const double fwd_wall = log.rsmt_ms + log.sta_fwd_ms;
      const double rsmt_frac = fwd_wall > 0.0 ? log.rsmt_ms / fwd_wall : 0.0;
      phase_cpu[2] += fwd_cpu * rsmt_frac;
      phase_cpu[3] += fwd_cpu * (1.0 - rsmt_frac);
      phase_clock.reset();
      diff_timer_->backward(1.0, options_.t2_ratio, g_t_x, g_t_y);
      log.sta_bwd_ms = phase_clock.elapsed_ms();
      phase_cpu[4] += phase_clock.cpu_elapsed_sec();
      sta_time += sta_clock.elapsed_sec();
      log.wns = tm.wns;
      log.tns = tm.tns;
      log.has_timing = true;
      if (inj != nullptr)
        inj->corrupt(robust::FaultSite::TimingGrad, iter, g_t_x, g_t_y);
      // Guard: a non-finite timing gradient is dropped (this iteration runs
      // wirelength-only) and reported to the degradation tracker — it must
      // never reach the combined gradient, where it would poison positions.
      bool t_grad_ok = true;
      if (guards && !robust::HealthMonitor::all_finite(g_t_x, g_t_y)) {
        const size_t bad =
            robust::HealthMonitor::count_nonfinite(g_t_x, g_t_y) +
            diff_timer_->last_backward_nonfinite();
        std::fill(g_t_x.begin(), g_t_x.end(), 0.0);
        std::fill(g_t_y.begin(), g_t_y.end(), 0.0);
        if (rc.on_timing_grad(iter, bad, 0, 0))
          pending_trigger = "timing_degrade";
        t_grad_ok = false;
      }
      // Normalize timing-gradient magnitude against the wirelength gradient,
      // then mix with the growing weight.  In at-activation mode the scale is
      // frozen on the first timing iteration, so the timing force decays
      // naturally as violations shrink instead of being re-amplified.
      if (t_grad_ok) {
        const double t_norm = l1(g_t_x, g_t_y);
        if (t_norm > 1e-30) {
          if (!options_.timing_scale_at_activation || timing_scale < 0.0) {
            const double wl_norm = l1(g_wl_x, g_wl_y);
            timing_scale = wl_norm / t_norm;
          }
          const double scale = t_mix * timing_scale;
          for (size_t c = 0; c < n; ++c) {
            g_t_x[c] *= scale;
            g_t_y[c] *= scale;
          }
          size_t clipped = 0, nonzero = 0;
          if (options_.t_clip > 0.0) {
            for (size_t c = 0; c < n; ++c) {
              const double bx =
                  options_.t_clip * (std::abs(g_wl_x[c]) + std::abs(g_den_x[c]));
              const double by =
                  options_.t_clip * (std::abs(g_wl_y[c]) + std::abs(g_den_y[c]));
              nonzero += (g_t_x[c] != 0.0) + (g_t_y[c] != 0.0);
              clipped += (g_t_x[c] < -bx || g_t_x[c] > bx) +
                         (g_t_y[c] < -by || g_t_y[c] > by);
              g_t_x[c] = std::clamp(g_t_x[c], -bx, bx);
              g_t_y[c] = std::clamp(g_t_y[c], -by, by);
            }
          }
          clip_clipped = clipped;
          clip_nonzero = nonzero;
          // Near-total clipping means the trust region is doing all the work
          // — the timing model has degenerated; repeated reports degrade.
          if (guards && rc.on_timing_grad(iter, 0, clipped, nonzero))
            pending_trigger = "timing_degrade";
        }
        t_mix = std::min(options_.t_max, t_mix * options_.t_growth);
      }
    } else if (timing_active && !timing_cut &&
               options_.mode == PlacerMode::NetWeighting &&
               (iter - options_.timing_start_iter) % options_.nw_period == 0) {
      Stopwatch sta_clock;
      const auto tm = exact_timer_->evaluate(x, y);
      net_weighting_->update(*exact_timer_, *wl_);
      log.sta_fwd_ms = sta_clock.elapsed_ms();
      phase_cpu[3] += sta_clock.cpu_elapsed_sec();
      sta_time += sta_clock.elapsed_sec();
      log.wns = tm.wns;
      log.tns = tm.tns;
      log.has_timing = true;
      precond_dirty = true;  // net weights changed
    }

    // Exact-STA probe for iteration curves (Fig. 8).
    if (options_.probe_timing_every > 0 && !log.has_timing &&
        iter % options_.probe_timing_every == 0) {
      const auto tm = exact_timer_->evaluate(x, y);
      log.wns = tm.wns;
      log.tns = tm.tns;
      log.has_timing = true;
    }

    // ---- combine, precondition, mask, step ----
    phase_clock.reset();
    if (precond_dirty) precond = wl_->cell_incidence_weights();
    combine_lambda = lambda;
    for (size_t c = 0; c < n; ++c) {
      if (!movable[c]) {
        g_x[c] = 0.0;
        g_y[c] = 0.0;
        continue;
      }
      const double p =
          std::max(1.0, precond[c] + lambda * area[c] / mean_area);
      g_x[c] = (g_wl_x[c] + g_den_x[c] + g_t_x[c]) / p;
      g_y[c] = (g_wl_y[c] + g_den_y[c] + g_t_y[c]) / p;
    }
    if (inj != nullptr)
      inj->corrupt(robust::FaultSite::TotalGrad, iter, g_x, g_y);
    // ---- guard: the combined gradient feeds the step directly ----
    if (guards && !robust::HealthMonitor::all_finite(g_x, g_y)) {
      // Attribute the poisoned gradient (NaNs serialize as null) so the
      // rollback decision is explainable from the artifact alone.
      emit_attribution(iter, "nan_grad");
      if (!handle_fault(iter, "nan_grad", "non-finite descent gradient")) {
        stop_reason = StopReason::Aborted;
        break;
      }
      continue;
    }
    optimizer_->step(x, y, g_x, g_y);

    // Project into the core.
    for (size_t c = 0; c < n; ++c) {
      if (!movable[c]) continue;
      x[c] = std::clamp(x[c], core.xl, core.xh - width[c]);
      y[c] = std::clamp(y[c], core.yl, core.yh - height[c]);
    }
    if (inj != nullptr)
      inj->corrupt(robust::FaultSite::Position, iter, x, y);

    lambda *= options_.lambda_mu;
    log.step_ms = phase_clock.elapsed_ms();
    phase_cpu[5] += phase_clock.cpu_elapsed_sec();

    iter_count.add();
    h_wl.observe(log.wl_grad_ms);
    h_den.observe(log.density_ms);
    if (log.rsmt_ms > 0.0) h_rsmt.observe(log.rsmt_ms);
    if (log.sta_fwd_ms > 0.0) h_sta_f.observe(log.sta_fwd_ms);
    if (log.sta_bwd_ms > 0.0) h_sta_b.observe(log.sta_bwd_ms);
    h_step.observe(log.step_ms);

    log.hpwl = wl_->hpwl_unweighted(x, y);
    result.history.push_back(log);
    if (options_.verbose && iter % 50 == 0)
      DTP_LOG_INFO("iter %4d  hpwl %.4g  overflow %.3f  lambda %.3g", iter,
                   log.hpwl, ds.overflow, lambda);
    if (log.has_timing) {
      last_wns = log.wns;
      last_tns = log.tns;
      seen_timing = true;
    }
    // Operator heartbeat: bypasses the logger so it survives --log-level off.
    if (options_.progress_every > 0 && iter % options_.progress_every == 0) {
      if (seen_timing)
        std::fprintf(stderr,
                     "[dtp] iter %4d  hpwl %.6g  overflow %.3f  wns %.4g  "
                     "tns %.4g  health %s\n",
                     iter, log.hpwl, ds.overflow, last_wns, last_tns,
                     robust::run_health_name(rc.health()));
      else
        std::fprintf(stderr,
                     "[dtp] iter %4d  hpwl %.6g  overflow %.3f  health %s\n",
                     iter, log.hpwl, ds.overflow,
                     robust::run_health_name(rc.health()));
      std::fflush(stderr);
    }
    // Off-cadence attribution forced by a robust-layer decision this
    // iteration, then the regular sampling cadence.
    if (!pending_trigger.empty()) {
      emit_attribution(iter, pending_trigger);
      pending_trigger.clear();
    }
    // Activity cadence: only iterations that actually ran the timer have a
    // fresh forward/backward pass to describe.
    if (asink != nullptr && log.has_timing &&
        options_.activity.sample_period > 0 &&
        iter % options_.activity.sample_period == 0)
      emit_activity(iter);
    if (sink != nullptr && options_.introspect.sample_period > 0 &&
        iter % options_.introspect.sample_period == 0)
      emit_introspection(iter);

    // ---- guard: divergence vs the trailing window (HPWL blow-up or a
    // sharp overflow rebound are both far outside healthy variation) ----
    if (guards) {
      const robust::Verdict verdict = rc.monitor().observe(log.hpwl, ds.overflow);
      if (verdict != robust::Verdict::Healthy) {
        emit_attribution(iter, "divergence");
        if (!handle_fault(iter, "divergence",
                          "hpwl/overflow blow-up vs trailing window")) {
          stop_reason = StopReason::Aborted;
          break;
        }
        continue;
      }
    }

    if (iter >= options_.min_iters && ds.overflow < options_.stop_overflow) {
      stop_reason = StopReason::Converged;
      break;
    }
  }

  // Final introspection sample so the artifact always ends with the converged
  // state (skipped if the cadence already emitted this iteration).
  const int final_iter = std::min(iter, options_.max_iters - 1);
  if (sink != nullptr && final_iter >= 0 && last_emit_iter != final_iter)
    emit_introspection(final_iter);
  // Final activity sample (if the cadence missed the last timing iteration)
  // and the run-end summary with the incremental-headroom estimate.
  if (asink != nullptr && final_iter >= 0 && last_activity_iter != final_iter)
    emit_activity(final_iter);
  if (asink != nullptr && activity_accum_.samples() > 0)
    asink->write_activity_summary(activity_accum_, *activity_tracker_,
                                  slack_sketch_);

  // A loop that stopped at its top (pause/cancel/budget poll) never executed
  // `iter`; every other exit completed it.
  const bool stopped_at_top = stop_reason == StopReason::Cancelled ||
                              stop_reason == StopReason::Paused ||
                              stop_reason == StopReason::TimeBudget;
  result.iterations =
      std::min(stopped_at_top ? iter : iter + 1, options_.max_iters);
  result.start_iter = start_iter;
  result.stop_reason = stop_reason;
  // Seal the final optimization state for pause/resume and --ckpt-out.  The
  // checkpointed iteration is where a resumed run continues: the *next*
  // iteration after a completed one, the interrupted iteration itself when
  // the loop stopped at its top (pause/cancel/budget see the state the
  // iteration would have started from).
  if (options_.checkpoint_out != nullptr) {
    if (robust::HealthMonitor::all_finite(x, y)) {
      const int resume_iter =
          std::min(stopped_at_top ? iter : iter + 1, options_.max_iters);
      optimizer_->save_state(opt_blob);
      const double scalars[4] = {lambda, t_mix, timing_scale,
                                 timing_active ? 1.0 : 0.0};
      options_.checkpoint_out->capture(resume_iter, x, y, scalars, opt_blob);
    } else {
      options_.checkpoint_out->invalidate();
    }
  }
  result.hpwl = wl_->hpwl_unweighted(x, y);
  result.overflow = result.history.empty() ? 0.0 : result.history.back().overflow;
  result.runtime_sec = total_clock.elapsed_sec();
  result.cpu_runtime_sec = total_clock.cpu_elapsed_sec();
  result.sta_runtime_sec = sta_time;
  result.phases.wirelength_sec = 1e-3 * (h_wl.sum() - sum0[0]);
  result.phases.density_sec = 1e-3 * (h_den.sum() - sum0[1]);
  result.phases.rsmt_sec = 1e-3 * (h_rsmt.sum() - sum0[2]);
  result.phases.sta_forward_sec = 1e-3 * (h_sta_f.sum() - sum0[3]);
  result.phases.sta_backward_sec = 1e-3 * (h_sta_b.sum() - sum0[4]);
  result.phases.step_sec = 1e-3 * (h_step.sum() - sum0[5]);
  result.phases.wirelength_cpu_sec = phase_cpu[0];
  result.phases.density_cpu_sec = phase_cpu[1];
  result.phases.rsmt_cpu_sec = phase_cpu[2];
  result.phases.sta_forward_cpu_sec = phase_cpu[3];
  result.phases.sta_backward_cpu_sec = phase_cpu[4];
  result.phases.step_cpu_sec = phase_cpu[5];
  result.health = rc.health();
  result.rollbacks = rc.rollbacks();
  result.timing_fallbacks = rc.timing_fallbacks();
  result.recoveries = rc.take_events();
  if (result.health != robust::RunHealth::Ok)
    DTP_LOG_INFO("global placement finished %s: %d rollback(s), %d timing "
                 "fallback(s), %zu recovery event(s)",
                 robust::run_health_name(result.health), result.rollbacks,
                 result.timing_fallbacks, result.recoveries.size());
  return result;
}

}  // namespace dtp::placer
