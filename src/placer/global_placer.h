// Nonlinear global placement driver (the paper's Fig. 7 flow).
//
// Minimizes  sum_e w_e WL(e) + lambda * D(x, y) [+ t1*(-TNS_g) + t2*(-WNS_g)]
// by preconditioned first-order descent (Nesterov-BB by default), with the
// ePlace ingredients: WA wirelength whose smoothing gamma tracks overflow,
// electrostatic density whose weight lambda grows geometrically, and — per
// placement mode — one of three timing treatments:
//
//   WirelengthOnly : no timing terms (the DREAMPlace [16] baseline),
//   NetWeighting   : periodic exact STA + momentum net re-weighting
//                    (the DREAMPlace 4.0 [24] baseline),
//   DiffTiming     : the paper's contribution — direct gradients of the
//                    smoothed TNS/WNS from the differentiable timer, activated
//                    once cells have spread (iteration ~100 / overflow gate),
//                    with weights growing a few percent per iteration up to a
//                    cap (paper §4 grows t1/t2 by 1%; the rates here are
//                    re-calibrated for the mini designs).
//
// Timing-gradient preconditioning (which the paper defers to future work):
// the timing gradient is magnitude-normalized against the wirelength gradient
// — by default with the scale frozen at activation so timing pressure decays
// as violations shrink — and clipped per cell to a multiple of the local
// WL+density gradient (a trust region that keeps critical cells from being
// flung across the die).  Defaults below are calibrated on the miniblue suite.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "dtimer/diff_timer.h"
#include "obs/activity/activity_record.h"
#include "obs/introspect/introspect.h"
#include "placer/density.h"
#include "placer/net_weighting.h"
#include "placer/optimizer.h"
#include "placer/wirelength.h"
#include "robust/recovery.h"
#include "sta/timer.h"

namespace dtp::placer {

enum class PlacerMode : uint8_t { WirelengthOnly, NetWeighting, DiffTiming };

// Why the descent loop stopped (DESIGN.md §12).  Everything except Aborted
// leaves a valid (finite, in-core) placement in the design.
enum class StopReason : uint8_t {
  Converged,   // overflow target reached
  MaxIters,    // iteration budget exhausted
  Cancelled,   // PlacerControl cancel request honoured
  Paused,      // PlacerControl pause request honoured (checkpoint captured)
  TimeBudget,  // wall-clock budget expired (graceful early stop)
  Aborted,     // recovery budget exhausted (health == Failed)
};

const char* stop_reason_name(StopReason r);

// Cooperative control plane for a running placement (DESIGN.md §12): another
// thread (a daemon scheduler, a signal handler) sets requests; the run loop
// polls them once per iteration, so every honour point sits between kernels
// where state is consistent.  The *_at_iter hooks fire the matching request
// from inside the loop at a fixed iteration — the deterministic counterpart
// used by the fault-injection soak tests.
struct PlacerControl {
  static constexpr uint32_t kCancel = 1u;
  static constexpr uint32_t kPause = 2u;
  static constexpr uint32_t kDegradeTiming = 4u;

  std::atomic<uint32_t> request{0};
  // Progress mirror: last iteration the loop started (read-only observability
  // for watchdogs; -1 until the loop runs).
  std::atomic<int> current_iter{-1};
  // Deterministic trigger points; -1 disables.  Set before run() starts.
  int cancel_at_iter = -1;
  int pause_at_iter = -1;

  void request_cancel() { request.fetch_or(kCancel, std::memory_order_release); }
  void request_pause() { request.fetch_or(kPause, std::memory_order_release); }
  void request_degrade_timing() {
    request.fetch_or(kDegradeTiming, std::memory_order_release);
  }
  void clear() { request.store(0, std::memory_order_release); }
};

struct GlobalPlacerOptions {
  PlacerMode mode = PlacerMode::WirelengthOnly;
  int max_iters = 1200;
  int min_iters = 120;
  double stop_overflow = 0.08;   // density-overflow stop criterion (Table 3)
  int bins = 0;                  // bins per dim; 0 = auto from cell count
  double target_density = 1.0;   // bin capacity fraction for overflow
  double lambda_mu = 1.03;       // density weight growth per iteration
  double lambda_init_ratio = 0.10;  // initial |density|/|wirelength| force ratio
  size_t ignore_net_degree = 128;

  // Timing activation (both timing modes).
  int timing_start_iter = 100;
  double timing_start_overflow = 0.50;

  // DiffTiming mode (paper §4 hyperparameters).
  double t1 = 0.10;              // TNS weight
  double t2_ratio = 0.05;        // WNS weight relative to TNS weight
  double t_growth = 1.03;        // +3% per iteration (calibrated)
  double t_max = 3.0;            // cap on the effective timing mix
  double gamma_timing = 0.05;    // LSE smoothing (ns)
  // Gamma annealing (paper §5 future work, "dynamic updating strategies"):
  // when > 0, gamma decays geometrically from gamma_timing to this value over
  // gamma_anneal_iters timing iterations — broad credit assignment early,
  // sharp criticality late.  0 disables (constant gamma, the paper's setup).
  double gamma_timing_final = 0.0;
  int gamma_anneal_iters = 200;
  int steiner_period = 10;       // FLUTE-substitute rebuild period (§3.6)
  rsmt::RsmtOptions rsmt;        // Steiner-tree construction knobs (§3.4.1)
  sta::WireDelayModel wire_model = sta::WireDelayModel::Elmore;  // §3.4.2
  // Timing-gradient normalization: if true, the |WL|/|timing| scale is frozen
  // at activation (the paper's static-weight regime: timing pressure fades as
  // violations shrink); if false it is recomputed every iteration (keeps
  // constant relative pressure, more aggressive, costs wirelength).
  bool timing_scale_at_activation = true;
  // Per-cell trust region: |timing grad| clipped to t_clip x |WL+density grad|
  // per component (<= 0 disables).  Keeps the handful of most-critical cells
  // from being flung across the die, which stretches their other nets.
  double t_clip = 4.0;

  // NetWeighting mode.
  int nw_period = 1;             // STA + reweight every K iterations
                                 // ([24]'s runtime is dominated by
                                 // repeated STA calls — paper §3.6)
  NetWeightingOptions nw;

  // Optimizer.
  bool use_adam = false;
  double adam_lr_bins = 0.30;    // Adam LR in units of bin width

  // Exact-STA probe for iteration curves (0 = off). Used by the Fig. 8 bench.
  int probe_timing_every = 0;

  // Fault-tolerance layer (DESIGN.md §7): pre-flight validation, per-iteration
  // numerical guards, checkpoint/rollback with a bounded retry budget, and
  // graceful timing degradation.  Guards are pure observers on a healthy run —
  // an un-faulted placement is bitwise-identical with them on or off.
  robust::RecoveryOptions robust;

  // Timing introspection (DESIGN.md §8): when `introspect_sink` points to an
  // open sink, the run emits path / grad_attrib / kernel_profile records every
  // `introspect.sample_period` iterations (and once at run end).  Robust-layer
  // decisions additionally force an off-cadence attribution record tagged with
  // the trigger.  The sink is a pure observer — positions are bitwise-
  // identical with it attached or not (asserted by tests/test_introspect.cpp).
  obs::IntrospectOptions introspect;
  obs::IntrospectionSink* introspect_sink = nullptr;  // not owned

  // Timing-activity telemetry (DESIGN.md §11): when `activity_sink` points to
  // an open sink, an ActivityTracker is attached to the run's timer and
  // `type:"activity"` records (slack sketch, per-level activity, criticality
  // churn) are emitted every `activity.sample_period` timing iterations, plus
  // one run-end `type:"activity_summary"`.  May alias `introspect_sink` to
  // share one stream.  Pure observer: placements are bitwise-identical with
  // it attached or not (asserted by tests/test_golden_plane.cpp).
  obs::ActivityOptions activity;
  obs::IntrospectionSink* activity_sink = nullptr;  // not owned

  // One stderr progress line every N iterations (0 = off), independent of the
  // log level — the operator's heartbeat for long runs.
  int progress_every = 0;

  // Cooperative control plane (DESIGN.md §12).  Not owned; may be shared with
  // a scheduler thread or a signal handler.  nullptr = uncontrolled run.
  PlacerControl* control = nullptr;

  // Wall-clock budget in seconds (0 = none).  Crossing
  // time_budget_degrade_frac of the budget permanently drops timing forces
  // (cheap WL+density iterations for the remainder); crossing the budget
  // stops the run with StopReason::TimeBudget and a valid placement — never
  // a hard kill mid-kernel.
  double time_budget_sec = 0.0;
  double time_budget_degrade_frac = 0.7;

  // Resume support (DESIGN.md §12): start the descent from a verified
  // checkpoint instead of the initial positions.  The checkpoint must come
  // from a run over the same design (sizes are enforced).  Not owned.
  const robust::Checkpoint* resume_from = nullptr;
  // When set, run() seals the final optimization state into this checkpoint
  // on every exit path with finite coordinates — the pause/preemption and
  // --ckpt-out hook.  Not owned.
  robust::Checkpoint* checkpoint_out = nullptr;

  bool verbose = false;
};

struct IterationLog {
  int iter = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double wns = 0.0;  // filled when timing is evaluated this iteration
  double tns = 0.0;
  bool has_timing = false;
  // Per-phase wall-clock milliseconds of this iteration (the --metrics-out
  // JSONL stream; zero for phases that did not run).
  double wl_grad_ms = 0.0;   // WA wirelength value + gradient
  double density_ms = 0.0;   // bin splat + Poisson solve + gradient
  double rsmt_ms = 0.0;      // Steiner rebuild or drag inside the timer
  double sta_fwd_ms = 0.0;   // Elmore + levelized AT/slew propagation
  double sta_bwd_ms = 0.0;   // adjoint sweep down the timing levels
  double step_ms = 0.0;      // precondition + optimizer step + projection
};

// Where the placement run's wall clock went, in seconds (summed over
// iterations).  Populated from the metrics-registry histograms the run feeds.
// The *_cpu_sec twins are process CPU time (all threads) over the same span,
// so cpu/wall per phase shows which kernels actually parallelize.
struct PhaseBreakdown {
  double wirelength_sec = 0.0;
  double density_sec = 0.0;
  double rsmt_sec = 0.0;
  double sta_forward_sec = 0.0;
  double sta_backward_sec = 0.0;
  double step_sec = 0.0;
  double wirelength_cpu_sec = 0.0;
  double density_cpu_sec = 0.0;
  double rsmt_cpu_sec = 0.0;
  double sta_forward_cpu_sec = 0.0;
  double sta_backward_cpu_sec = 0.0;
  double step_cpu_sec = 0.0;
};

struct PlaceResult {
  int iterations = 0;
  int start_iter = 0;           // first executed iteration (resume offset)
  StopReason stop_reason = StopReason::Converged;
  double hpwl = 0.0;            // final unweighted HPWL
  double overflow = 0.0;
  double runtime_sec = 0.0;
  double cpu_runtime_sec = 0.0; // process CPU time (all threads) for run()
  double sta_runtime_sec = 0.0; // time inside timing forward/backward
  PhaseBreakdown phases;
  std::vector<IterationLog> history;
  // Fault-tolerance outcome (DESIGN.md §7): Ok when no fault was ever seen,
  // Recovered/Degraded when guards fired, Failed when the retry budget ran
  // out (positions hold the best-known checkpoint in that case).
  robust::RunHealth health = robust::RunHealth::Ok;
  int rollbacks = 0;
  int timing_fallbacks = 0;
  std::vector<robust::RecoveryEvent> recoveries;
};

class GlobalPlacer {
 public:
  GlobalPlacer(netlist::Design& design, const sta::TimingGraph& graph,
               GlobalPlacerOptions options = {});

  // Runs global placement on design.cell_x/cell_y in place.
  PlaceResult run();

  DensityModel& density() { return *density_; }
  WirelengthModel& wirelength() { return *wl_; }

 private:
  int auto_bins() const;
  void update_wl_gamma(double overflow);

  netlist::Design* design_;
  const sta::TimingGraph* graph_;
  GlobalPlacerOptions options_;
  std::unique_ptr<WirelengthModel> wl_;
  std::unique_ptr<DensityModel> density_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<dtimer::DiffTimer> diff_timer_;  // DiffTiming mode
  std::unique_ptr<sta::Timer> exact_timer_;        // NetWeighting + probes
  std::unique_ptr<NetWeighting> net_weighting_;
  // Activity layer (created when options_.activity_sink is an open sink).
  std::unique_ptr<obs::ActivityTracker> activity_tracker_;
  obs::SlackSketch slack_sketch_;
  obs::ChurnTracker churn_tracker_;
  obs::ActivitySummaryAccum activity_accum_;
};

}  // namespace dtp::placer
