#include "placer/run_report.h"

#include "common/json_writer.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace dtp::placer {

const char* mode_short_name(PlacerMode mode) {
  switch (mode) {
    case PlacerMode::WirelengthOnly: return "wl";
    case PlacerMode::NetWeighting: return "nw";
    case PlacerMode::DiffTiming: return "dt";
  }
  return "?";
}

namespace {

void meta_fields(JsonWriter& w, const RunMeta& meta) {
  w.key("design").value(meta.design);
  w.key("mode").value(meta.mode);
}

void health_fields(JsonWriter& w, const PlaceResult& result) {
  w.key("health").value(robust::run_health_name(result.health));
  w.key("rollbacks").value(result.rollbacks);
  w.key("timing_fallbacks").value(result.timing_fallbacks);
}

void phase_object(JsonWriter& w, const PhaseBreakdown& p) {
  w.begin_object();
  w.key("wirelength_sec").value(p.wirelength_sec);
  w.key("density_sec").value(p.density_sec);
  w.key("rsmt_sec").value(p.rsmt_sec);
  w.key("sta_forward_sec").value(p.sta_forward_sec);
  w.key("sta_backward_sec").value(p.sta_backward_sec);
  w.key("step_sec").value(p.step_sec);
  w.key("wirelength_cpu_sec").value(p.wirelength_cpu_sec);
  w.key("density_cpu_sec").value(p.density_cpu_sec);
  w.key("rsmt_cpu_sec").value(p.rsmt_cpu_sec);
  w.key("sta_forward_cpu_sec").value(p.sta_forward_cpu_sec);
  w.key("sta_backward_cpu_sec").value(p.sta_backward_cpu_sec);
  w.key("step_cpu_sec").value(p.step_cpu_sec);
  w.end_object();
}

}  // namespace

void append_run_jsonl(obs::JsonlWriter& out, const PlaceResult& result,
                      const RunMeta& meta) {
  for (const IterationLog& log : result.history) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("iter");
    meta_fields(w, meta);
    w.key("iter").value(log.iter);
    w.key("hpwl").value(log.hpwl);
    w.key("overflow").value(log.overflow);
    w.key("lambda").value(log.lambda);
    if (log.has_timing) {
      w.key("wns").value(log.wns);
      w.key("tns").value(log.tns);
    }
    w.key("wl_grad_ms").value(log.wl_grad_ms);
    w.key("density_ms").value(log.density_ms);
    w.key("rsmt_ms").value(log.rsmt_ms);
    w.key("sta_fwd_ms").value(log.sta_fwd_ms);
    w.key("sta_bwd_ms").value(log.sta_bwd_ms);
    w.key("step_ms").value(log.step_ms);
    w.end_object();
    out.write_line(w.str());
  }
  for (const robust::RecoveryEvent& ev : result.recoveries) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("recovery");
    meta_fields(w, meta);
    w.key("iter").value(ev.iter);
    w.key("kind").value(ev.kind);
    w.key("action").value(ev.action);
    w.key("step_scale").value(ev.step_scale);
    if (!ev.detail.empty()) w.key("detail").value(ev.detail);
    w.end_object();
    out.write_line(w.str());
  }
  // A budget-stopped run carries an explicit timeout record so the stream is
  // self-describing even when read without the run_end (DESIGN.md §12).
  if (result.stop_reason == StopReason::TimeBudget) {
    JsonWriter w;
    w.begin_object();
    w.key("type").value("timeout");
    meta_fields(w, meta);
    w.key("iterations").value(result.iterations);
    w.key("runtime_sec").value(result.runtime_sec);
    w.end_object();
    out.write_line(w.str());
  }
  JsonWriter w;
  w.begin_object();
  w.key("type").value("run_end");
  meta_fields(w, meta);
  w.key("stop_reason").value(stop_reason_name(result.stop_reason));
  w.key("iterations").value(result.iterations);
  w.key("hpwl").value(result.hpwl);
  w.key("overflow").value(result.overflow);
  w.key("runtime_sec").value(result.runtime_sec);
  w.key("cpu_runtime_sec").value(result.cpu_runtime_sec);
  w.key("sta_runtime_sec").value(result.sta_runtime_sec);
  health_fields(w, result);
  w.key("phases");
  phase_object(w, result.phases);
  w.end_object();
  out.write_line(w.str());
}

void append_abort_record(obs::JsonlWriter& out, const RunMeta& meta,
                         const std::string& stage, const std::string& error,
                         int exit_code) {
  JsonWriter w;
  w.begin_object();
  w.key("type").value("abort");
  meta_fields(w, meta);
  w.key("stage").value(stage);
  w.key("error").value(error);
  w.key("exit_code").value(exit_code);
  w.end_object();
  out.write_line(w.str());
}

void run_summary_object(JsonWriter& w, const PlaceResult& result,
                        const RunMeta& meta) {
  w.begin_object();
  meta_fields(w, meta);
  w.key("stop_reason").value(stop_reason_name(result.stop_reason));
  w.key("iterations").value(result.iterations);
  w.key("hpwl").value(result.hpwl);
  w.key("overflow").value(result.overflow);
  w.key("runtime_sec").value(result.runtime_sec);
  w.key("cpu_runtime_sec").value(result.cpu_runtime_sec);
  w.key("sta_runtime_sec").value(result.sta_runtime_sec);
  const IterationLog* last_timed = nullptr;
  for (const IterationLog& log : result.history)
    if (log.has_timing) last_timed = &log;
  if (last_timed != nullptr) {
    w.key("wns").value(last_timed->wns);
    w.key("tns").value(last_timed->tns);
  }
  health_fields(w, result);
  w.key("phases");
  phase_object(w, result.phases);
  w.end_object();
}

bool write_summary_json(const std::string& path,
                        const std::vector<PlaceResult>& results,
                        const std::vector<RunMeta>& metas) {
  JsonWriter w;
  w.begin_object();
  w.key("runs").begin_array();
  for (size_t i = 0; i < results.size() && i < metas.size(); ++i)
    run_summary_object(w, results[i], metas[i]);
  w.end_array();

  const ThreadPoolStats pool = ThreadPool::global().stats();
  w.key("thread_pool").begin_object();
  w.key("num_threads").value(pool.num_threads);
  w.key("parallel_for_calls").value(pool.parallel_for_calls);
  w.key("inline_ranges").value(pool.inline_ranges);
  w.key("tasks_executed").value(pool.tasks_executed);
  w.key("queue_wait_sec").value(pool.queue_wait_sec);
  w.key("busy_sec").value(pool.busy_sec);
  w.key("utilization").value(pool.utilization());
  w.end_object();

  w.key("metrics").raw(obs::MetricsRegistry::instance().to_json());
  w.end_object();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

std::string summary_path_for(const std::string& jsonl_path) {
  const std::string suffix = ".jsonl";
  if (jsonl_path.size() > suffix.size() &&
      jsonl_path.compare(jsonl_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return jsonl_path.substr(0, jsonl_path.size() - suffix.size()) +
           ".summary.json";
  }
  return jsonl_path + ".summary.json";
}

}  // namespace dtp::placer
