#include "placer/legalizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace dtp::placer {

using netlist::CellId;

namespace {

struct RowState {
  double frontier;  // first free x in this row
};

}  // namespace

LegalizeResult legalize(const netlist::Design& design, std::span<double> x,
                        std::span<double> y, const LegalizerOptions& opts) {
  const netlist::Netlist& nl = design.netlist;
  const netlist::Floorplan& fp = design.floorplan;
  const int num_rows = fp.num_rows();
  const double site = fp.site_width;

  std::vector<RowState> rows(static_cast<size_t>(num_rows), {fp.core.xl});

  // Movable cells sorted by desired x.
  std::vector<size_t> order;
  for (size_t c = 0; c < nl.num_cells(); ++c)
    if (!nl.cell(static_cast<CellId>(c)).fixed) order.push_back(c);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return x[a] < x[b]; });

  LegalizeResult result;
  for (size_t c : order) {
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    const double w = master.width;
    const int want_row = std::clamp(
        static_cast<int>((y[c] - fp.core.yl) / fp.row_height + 0.5), 0,
        num_rows - 1);
    double best_cost = std::numeric_limits<double>::infinity();
    int best_row = -1;
    double best_x = 0.0;
    for (int dr = 0; dr <= opts.row_search_range; ++dr) {
      for (int sgn = (dr == 0 ? 1 : -1); sgn <= 1; sgn += 2) {
        const int r = want_row + sgn * dr;
        if (r < 0 || r >= num_rows) continue;
        // Candidate x: desired, but never before the row frontier; snapped to
        // sites; must fit in the row.
        double cx = std::max(x[c], rows[static_cast<size_t>(r)].frontier);
        cx = fp.core.xl + std::ceil((cx - fp.core.xl) / site - 1e-9) * site;
        if (cx + w > fp.core.xh + 1e-9) continue;
        const double ry = fp.core.yl + r * fp.row_height;
        const double cost = std::abs(cx - x[c]) + std::abs(ry - y[c]);
        if (cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_x = cx;
        }
        if (dr == 0) break;  // row 0 offset: single candidate
      }
      // Early exit: rows further away cost at least dr*row_height.
      if (best_row >= 0 && best_cost < (dr + 1) * fp.row_height) break;
    }
    if (best_row < 0) {
      // Fallback: scan every row for any space (densely packed tail).
      for (int r = 0; r < num_rows; ++r) {
        double cx = rows[static_cast<size_t>(r)].frontier;
        cx = fp.core.xl + std::ceil((cx - fp.core.xl) / site - 1e-9) * site;
        if (cx + w > fp.core.xh + 1e-9) continue;
        const double ry = fp.core.yl + r * fp.row_height;
        const double cost = std::abs(cx - x[c]) + std::abs(ry - y[c]);
        if (best_row < 0 || cost < best_cost) {
          best_cost = cost;
          best_row = r;
          best_x = cx;
        }
      }
    }
    if (best_row < 0) {
      ++result.failed_cells;
      continue;
    }
    const double ny = fp.core.yl + best_row * fp.row_height;
    const double disp = std::abs(best_x - x[c]) + std::abs(ny - y[c]);
    result.total_displacement += disp;
    result.max_displacement = std::max(result.max_displacement, disp);
    x[c] = best_x;
    y[c] = ny;
    rows[static_cast<size_t>(best_row)].frontier = best_x + w;
  }
  return result;
}

bool is_legal(const netlist::Design& design, std::span<const double> x,
              std::span<const double> y, std::string* why) {
  const netlist::Netlist& nl = design.netlist;
  const netlist::Floorplan& fp = design.floorplan;
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };

  // Per-row interval collection.
  std::vector<std::vector<std::pair<double, double>>> rows(
      static_cast<size_t>(fp.num_rows()));
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(static_cast<CellId>(c)).fixed) continue;
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    if (x[c] < fp.core.xl - 1e-9 || x[c] + master.width > fp.core.xh + 1e-9 ||
        y[c] < fp.core.yl - 1e-9 || y[c] + master.height > fp.core.yh + 1e-9)
      return fail("cell outside core: " + nl.cell(static_cast<CellId>(c)).name);
    const double row_f = (y[c] - fp.core.yl) / fp.row_height;
    if (std::abs(row_f - std::round(row_f)) > 1e-6)
      return fail("cell not row aligned: " + nl.cell(static_cast<CellId>(c)).name);
    const double site_f = (x[c] - fp.core.xl) / fp.site_width;
    if (std::abs(site_f - std::round(site_f)) > 1e-6)
      return fail("cell not site aligned: " + nl.cell(static_cast<CellId>(c)).name);
    const int r = static_cast<int>(std::round(row_f));
    if (r < 0 || r >= fp.num_rows())
      return fail("cell row out of range: " + nl.cell(static_cast<CellId>(c)).name);
    rows[static_cast<size_t>(r)].emplace_back(x[c], x[c] + master.width);
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    for (size_t i = 1; i < row.size(); ++i)
      if (row[i].first < row[i - 1].second - 1e-9) return fail("overlap in row");
  }
  if (why) why->clear();
  return true;
}

double detailed_place_swaps(const netlist::Design& design,
                            const WirelengthModel& wl, std::span<double> x,
                            std::span<double> y, int max_passes) {
  const netlist::Netlist& nl = design.netlist;
  const netlist::Floorplan& fp = design.floorplan;
  const double before = wl.hpwl_unweighted(x, y);

  // Group movable cells by row, ordered by x.
  std::vector<std::vector<size_t>> rows(static_cast<size_t>(fp.num_rows()));
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(static_cast<CellId>(c)).fixed) continue;
    const int r = std::clamp(
        static_cast<int>(std::round((y[c] - fp.core.yl) / fp.row_height)), 0,
        fp.num_rows() - 1);
    rows[static_cast<size_t>(r)].push_back(c);
  }
  for (auto& row : rows)
    std::sort(row.begin(), row.end(), [&](size_t a, size_t b) { return x[a] < x[b]; });

  auto width_of = [&](size_t c) {
    return nl.lib_cell_of(static_cast<CellId>(c)).width;
  };

  // Incident placement nets per cell, for O(local) swap cost evaluation.
  std::vector<std::vector<netlist::NetId>> incident(nl.num_cells());
  for (netlist::NetId n : wl.active_nets())
    for (netlist::PinId p : nl.net(n).pins)
      incident[static_cast<size_t>(nl.pin(p).cell)].push_back(n);

  auto local_hpwl = [&](size_t a, size_t b) {
    double total = 0.0;
    auto add_nets = [&](size_t c, size_t skip_cell) {
      for (netlist::NetId n : incident[c]) {
        // Avoid double counting nets incident to both cells.
        bool shared = false;
        if (skip_cell != c) {
          for (netlist::NetId n2 : incident[skip_cell])
            if (n2 == n) {
              shared = true;
              break;
            }
        }
        if (shared && c > skip_cell) continue;
        double xl = 1e300, xh = -1e300, yl = 1e300, yh = -1e300;
        for (netlist::PinId p : nl.net(n).pins) {
          const CellId cc = nl.pin(p).cell;
          const Vec2 off = nl.pin_offset(p);
          const double px = x[static_cast<size_t>(cc)] + off.x;
          const double py = y[static_cast<size_t>(cc)] + off.y;
          xl = std::min(xl, px);
          xh = std::max(xh, px);
          yl = std::min(yl, py);
          yh = std::max(yh, py);
        }
        total += (xh - xl) + (yh - yl);
      }
    };
    add_nets(a, b);
    add_nets(b, a);
    return total;
  };

  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (auto& row : rows) {
      for (size_t i = 0; i + 1 < row.size(); ++i) {
        const size_t a = row[i], b = row[i + 1];
        // Swap in place: b takes a's left edge, a goes after b.
        const double ax = x[a], bx = x[b];
        const double ax_new = ax + width_of(b);
        const double bx_new = ax;
        if (ax_new + width_of(a) > bx + width_of(b) + 1e-9) continue;
        const double h0 = local_hpwl(a, b);
        x[a] = ax_new;
        x[b] = bx_new;
        const double h1 = local_hpwl(a, b);
        if (h1 < h0 - 1e-9) {
          std::swap(row[i], row[i + 1]);
          improved = true;
        } else {
          x[a] = ax;
          x[b] = bx;
        }
      }
    }
    if (!improved) break;
  }
  return before - wl.hpwl_unweighted(x, y);
}

TimingDpResult timing_driven_swaps(const netlist::Design& design,
                                   const WirelengthModel& wl, sta::Timer& timer,
                                   std::span<double> x, std::span<double> y,
                                   double tns_weight, int max_passes) {
  const netlist::Netlist& nl = design.netlist;
  const netlist::Floorplan& fp = design.floorplan;

  // Row membership (x-sorted), as in detailed_place_swaps.
  std::vector<std::vector<size_t>> rows(static_cast<size_t>(fp.num_rows()));
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(static_cast<CellId>(c)).fixed) continue;
    const int r = std::clamp(
        static_cast<int>(std::round((y[c] - fp.core.yl) / fp.row_height)), 0,
        fp.num_rows() - 1);
    rows[static_cast<size_t>(r)].push_back(c);
  }
  for (auto& row : rows)
    std::sort(row.begin(), row.end(), [&](size_t a, size_t b) { return x[a] < x[b]; });

  std::vector<std::vector<netlist::NetId>> incident(nl.num_cells());
  for (netlist::NetId n : wl.active_nets())
    for (netlist::PinId p : nl.net(n).pins)
      incident[static_cast<size_t>(nl.pin(p).cell)].push_back(n);

  auto local_hpwl = [&](size_t a, size_t b) {
    double total = 0.0;
    auto add = [&](size_t c, size_t other) {
      for (netlist::NetId n : incident[c]) {
        bool shared = false;
        for (netlist::NetId n2 : incident[other])
          if (n2 == n) {
            shared = true;
            break;
          }
        if (shared && c > other) continue;
        double xl = 1e300, xh = -1e300, yl = 1e300, yh = -1e300;
        for (netlist::PinId p : nl.net(n).pins) {
          const CellId cc = nl.pin(p).cell;
          const Vec2 off = nl.pin_offset(p);
          xl = std::min(xl, x[static_cast<size_t>(cc)] + off.x);
          xh = std::max(xh, x[static_cast<size_t>(cc)] + off.x);
          yl = std::min(yl, y[static_cast<size_t>(cc)] + off.y);
          yh = std::max(yh, y[static_cast<size_t>(cc)] + off.y);
        }
        total += (xh - xl) + (yh - yl);
      }
    };
    add(a, b);
    add(b, a);
    return total;
  };

  auto width_of = [&](size_t c) {
    return nl.lib_cell_of(static_cast<CellId>(c)).width;
  };

  TimingDpResult result;
  double tns = timer.metrics().tns;
  const double tns_start = tns;

  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (auto& row : rows) {
      for (size_t i = 0; i + 1 < row.size(); ++i) {
        const size_t a = row[i], b = row[i + 1];
        const double ax = x[a], bx = x[b];
        const double ax_new = ax + width_of(b);
        if (ax_new + width_of(a) > bx + width_of(b) + 1e-9) continue;
        ++result.swaps_tried;
        const double h0 = local_hpwl(a, b);
        x[a] = ax_new;
        x[b] = ax;
        const CellId moved[2] = {static_cast<CellId>(a), static_cast<CellId>(b)};
        const double tns_new =
            timer.evaluate_incremental(x, y, moved).tns;
        const double h1 = local_hpwl(a, b);
        // Accept when weighted TNS gain beats the HPWL cost.
        if (tns_weight * (tns_new - tns) > (h1 - h0) + 1e-12) {
          std::swap(row[i], row[i + 1]);
          result.hpwl_delta += h1 - h0;
          tns = tns_new;
          improved = true;
          ++result.swaps_accepted;
        } else {
          x[a] = ax;
          x[b] = bx;
          timer.evaluate_incremental(x, y, moved);  // restore timer state
        }
      }
    }
    if (!improved) break;
  }
  result.tns_gain = tns - tns_start;
  return result;
}

}  // namespace dtp::placer
