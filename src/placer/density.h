// Bin density accumulation and electrostatic density force (ePlace model).
//
// Each movable cell deposits its area into the bins it overlaps; cells
// smaller than a bin are inflated to bin dimensions with proportionally
// reduced charge density so total charge (area) is preserved — ePlace's local
// smoothing, which keeps the density gradient well-defined for cells much
// smaller than a bin.  Fixed cells with area (macros) would deposit immovable
// charge; IO pads are zero-area and contribute nothing.
//
// From the bin densities the PoissonSolver yields the potential and field;
// the force on a cell is its charge times the field averaged over its
// (inflated) footprint, bin-overlap weighted — the exact gradient of the
// system energy with respect to the cell position under the same splat.
#pragma once

#include <span>
#include <vector>

#include "kernels/kernel_backend.h"
#include "netlist/netlist.h"
#include "placer/poisson.h"

namespace dtp::placer {

struct DensityStats {
  double overflow = 0.0;      // sum max(0, rho - target) / total movable area
  double max_density = 0.0;   // peak bin density relative to bin area
  double energy = 0.0;        // 0.5 * sum rho * psi
};

class DensityModel {
 public:
  // target_density: usable fraction of each bin (utilization target).
  DensityModel(const netlist::Design& design, int bins_per_dim,
               double target_density);

  int grid() const { return m_; }
  double bin_w() const { return bin_w_; }
  double bin_h() const { return bin_h_; }

  // Splats movable cells at (x, y) (cell origins), solves the Poisson system
  // and returns stats. Call before force().
  DensityStats update(std::span<const double> x, std::span<const double> y);

  // Accumulates (+=) the density gradient d(energy)/d(cell pos) into gx/gy.
  // Positive gradient pushes downhill when *subtracted* — i.e. the placer
  // adds lambda * this to the objective gradient.
  void add_gradient(std::span<const double> x, std::span<const double> y,
                    double lambda, std::span<double> gx,
                    std::span<double> gy) const;

  const std::vector<double>& bin_density() const { return rho_; }
  const std::vector<double>& potential() const { return psi_; }

 private:
  // Borrowed views handed to the kernel backend's scatter/gather entry
  // points (which own the footprint-inflation math, see kernel_impl.h).
  kernels::DensityGrid grid_view() const;
  kernels::DensityCells cells_view() const;

  const netlist::Design* design_;
  int m_;
  double target_density_;
  double bin_w_, bin_h_;
  std::vector<double> cell_w_, cell_h_, cell_area_;  // per cell (0 for pads)
  std::vector<char> movable_;
  double total_movable_area_ = 0.0;
  PoissonSolver solver_;
  std::vector<double> rho_, psi_, field_x_, field_y_;
};

}  // namespace dtp::placer
