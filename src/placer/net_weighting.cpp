#include "placer/net_weighting.h"

#include <algorithm>
#include <cmath>

namespace dtp::placer {

using netlist::NetId;
using netlist::PinId;

size_t NetWeighting::update(sta::Timer& timer, WirelengthModel& wl) const {
  timer.update_required();
  const double wns = timer.metrics().wns;
  if (wns >= 0.0) return 0;  // no violations: leave weights as they are

  auto weights = wl.net_weights();
  size_t critical = 0;
  const netlist::Netlist& nl = design_->netlist;
  for (NetId n : graph_->timing_nets()) {
    // Net criticality: worst slack over the net's pins.
    double worst = std::numeric_limits<double>::infinity();
    for (PinId p : nl.net(n).pins) worst = std::min(worst, timer.pin_slack(p));
    double crit = 0.0;
    if (std::isfinite(worst) && worst < 0.0) {
      crit = std::min(1.0, -worst / -wns);
      ++critical;
    }
    double& w = weights[static_cast<size_t>(n)];
    w = options_.alpha * w + (1.0 - options_.alpha) * (1.0 + options_.beta * crit);
  }
  return critical;
}

}  // namespace dtp::placer
