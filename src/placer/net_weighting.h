// Momentum-based net weighting: the DREAMPlace 4.0 baseline [24].
//
// Periodically runs exact STA, derives a per-net criticality from the worst
// pin slack on the net,
//
//   crit_e = clamp(-worst_slack(e) / |WNS|, 0, 1)        (0 if no violation)
//
// and updates the wirelength weight of each net as an exponential moving
// average toward the bounded boost target:
//
//   w_e <- alpha * w_e + (1 - alpha) * (1 + beta * crit_e)
//
// so weights live in [1, 1 + beta]: criticality raises a net's weight toward
// the cap and persistent non-criticality decays it back toward 1 (the
// momentum both smooths STA staleness and forgets stale criticality).
// This is the *indirect* timing optimization the paper compares against:
// timing pressure enters only by re-weighting the one-hop wirelength
// objective, never through a gradient of the actual timing metrics.
#pragma once

#include "placer/wirelength.h"
#include "sta/timer.h"

namespace dtp::placer {

struct NetWeightingOptions {
  double alpha = 0.5;  // momentum (history retention)
  double beta = 8.0;   // boost cap: weights live in [1, 1 + beta]
};

class NetWeighting {
 public:
  NetWeighting(const netlist::Design& design, const sta::TimingGraph& graph,
               NetWeightingOptions options = {})
      : design_(&design), graph_(&graph), options_(options) {}

  // Runs update_required() on the (already forward-propagated) timer, then
  // updates `wl.net_weights()` in place.  Returns the number of critical nets.
  size_t update(sta::Timer& timer, WirelengthModel& wl) const;

 private:
  const netlist::Design* design_;
  const sta::TimingGraph* graph_;
  NetWeightingOptions options_;
};

}  // namespace dtp::placer
