// Machine-readable run artifacts for a placement run (DESIGN.md §6):
//
//   * a JSONL stream with one record per placer iteration, carrying the
//     optimization state (HPWL, overflow, lambda, WNS/TNS) and the per-phase
//     wall-clock milliseconds of IterationLog — the raw series behind the
//     paper's Fig. 8 convergence curves and Table 3 runtime attribution;
//   * a summary JSON with the run's final numbers, the per-phase runtime
//     breakdown, thread-pool utilization, and the full metrics-registry dump.
//
// Both the CLI placer (--metrics-out) and the table3/fig8 benches emit these;
// records carry design/mode fields so multiple runs can share one stream.
#pragma once

#include <string>

#include "obs/jsonl.h"
#include "placer/global_placer.h"

namespace dtp {
class JsonWriter;
}

namespace dtp::placer {

struct RunMeta {
  std::string design;  // design/workload name
  std::string mode;    // "wl" | "nw" | "dt" (PlacerMode short name)
};

const char* mode_short_name(PlacerMode mode);

// Appends one {"type":"iter",...} record per iteration of `result.history`,
// one {"type":"recovery",...} record per fault-tolerance event (DESIGN.md §7),
// then one {"type":"run_end",...} record with the final numbers and health.
void append_run_jsonl(obs::JsonlWriter& out, const PlaceResult& result,
                      const RunMeta& meta);

// Appends one {"type":"abort",...} record — written on abnormal exit paths
// (invalid design, recovery budget exhausted, uncaught exception) so even a
// truncated stream records why the run stopped and with what exit code.
void append_abort_record(obs::JsonlWriter& out, const RunMeta& meta,
                         const std::string& stage, const std::string& error,
                         int exit_code);

// Serializes one run-summary object (final metrics + phase breakdown) at the
// writer's current position.
void run_summary_object(JsonWriter& w, const PlaceResult& result,
                        const RunMeta& meta);

// Standalone summary document: {"runs":[...], "thread_pool":{...},
// "metrics":<registry dump>}.  Returns false if the file cannot be written.
bool write_summary_json(const std::string& path,
                        const std::vector<PlaceResult>& results,
                        const std::vector<RunMeta>& metas);

// Companion summary path for a JSONL stream: "m.jsonl" -> "m.summary.json",
// anything else gets ".summary.json" appended.
std::string summary_path_for(const std::string& jsonl_path);

}  // namespace dtp::placer
