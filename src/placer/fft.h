// Iterative radix-2 complex FFT and the half-sample cosine/sine row kernels
// built on it — the fast path of the spectral Poisson solver (the CPU
// analogue of DREAMPlace's dct2_fft2 CUDA kernels).
//
// All transforms here use the "half-sample" Neumann basis
//
//   C_u(x) = cos(pi*u*(x+1/2)/m),   S_u(x) = sin(pi*u*(x+1/2)/m)
//
// with three row kernels:
//
//   dct2      : X_u  = sum_x x_x * C_u(x)          (analysis / DCT-II)
//   eval_cos  : f(x) = sum_u a_u * C_u(x)          (synthesis / DCT-III-like)
//   eval_sin  : f(x) = sum_u b_u * S_u(x)          (sine synthesis)
//
// Each is reduced to one complex FFT of size 2m with twiddle pre/post
// rotation; sizes must be powers of two.  The equivalent O(m^2) direct sums
// live in the same interface (used for odd sizes and as the test oracle).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace dtp::placer {

using std::size_t;

// Radix-2 complex FFT plan for a fixed power-of-two size.
class Fft {
 public:
  explicit Fft(size_t n);  // n must be a power of two

  size_t size() const { return n_; }

  // In-place forward DFT: X_k = sum_n x_n e^{-i 2 pi k n / N}.
  void forward(std::vector<double>& re, std::vector<double>& im) const;
  // In-place inverse DFT *without* the 1/N factor.
  void inverse(std::vector<double>& re, std::vector<double>& im) const;

 private:
  void transform(std::vector<double>& re, std::vector<double>& im,
                 bool invert) const;

  size_t n_;
  std::vector<size_t> bit_reverse_;
  std::vector<double> tw_re_, tw_im_;  // e^{-i 2 pi k / N}, k < N/2
};

// Half-sample transform plan of length m (rows of the Poisson grid).
class HalfSampleTransform {
 public:
  explicit HalfSampleTransform(size_t m);

  size_t size() const { return m_; }
  bool fast() const { return fft_ != nullptr; }

  // out[u] = sum_x in[x] cos(pi u (x+1/2) / m)
  void dct2(const double* in, double* out) const;
  // out[x] = sum_u in[u] cos(pi u (x+1/2) / m)
  void eval_cos(const double* in, double* out) const;
  // out[x] = sum_u in[u] sin(pi u (x+1/2) / m)
  void eval_sin(const double* in, double* out) const;

 private:
  size_t m_;
  std::unique_ptr<Fft> fft_;  // size 2m; null when m is not a power of two
  // Precomputed tables for both the fast rotations and the slow path.
  std::vector<double> cos_tab_, sin_tab_;    // [u*m + x] direct tables
  std::vector<double> rot_re_, rot_im_;      // e^{-i pi k / (2m)}, k < 2m
  mutable std::vector<double> scratch_re_, scratch_im_;
};

inline bool is_power_of_two(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace dtp::placer
