// Tetris-style greedy legalization and a row-local detailed placement pass.
//
// Legalization (the LG step of the flow) snaps the global-placement result to
// non-overlapping, row- and site-aligned positions: cells are processed in
// x order and each is packed into the row (within a search window around its
// global position) that minimizes its displacement, at the first free site at
// or after its desired x.  Classic Hill's "Tetris" scheme — simple, fast, and
// adequate for standard-cell rows without macros.
//
// Detailed placement then greedily swaps adjacent cells within each row when
// a swap reduces HPWL — a deliberately local refinement (the paper's flow
// delegates serious DP to external tools; this pass exists so the repo ships
// a complete GP -> LG -> DP pipeline).
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "placer/wirelength.h"
#include "sta/timer.h"

namespace dtp::placer {

struct LegalizerOptions {
  int row_search_range = 12;  // rows examined above/below the desired row
};

struct LegalizeResult {
  double total_displacement = 0.0;
  double max_displacement = 0.0;
  size_t failed_cells = 0;  // cells that found no space (should stay 0)
};

// Legalizes movable cells in place (x/y are cell origins).
LegalizeResult legalize(const netlist::Design& design, std::span<double> x,
                        std::span<double> y, const LegalizerOptions& opts = {});

// True iff no two movable cells overlap, all are inside the core and aligned
// to rows/sites. Used by tests and as a post-LG assertion.
bool is_legal(const netlist::Design& design, std::span<const double> x,
              std::span<const double> y, std::string* why = nullptr);

// Row-local adjacent-swap detailed placement; returns HPWL improvement.
double detailed_place_swaps(const netlist::Design& design,
                            const WirelengthModel& wl, std::span<double> x,
                            std::span<double> y, int max_passes = 3);

// Timing-driven detailed placement: adjacent swaps within rows, each
// evaluated with *incremental* STA (only the affected timing cone is
// re-propagated), accepted when the weighted objective
//     delta = tns_weight * (-delta TNS) + delta HPWL
// improves.  The timer must already reflect (x, y); it is left consistent
// with the final positions.  Returns the TNS improvement (>= 0).
struct TimingDpResult {
  double tns_gain = 0.0;
  double hpwl_delta = 0.0;   // signed; positive = HPWL increased
  size_t swaps_accepted = 0;
  size_t swaps_tried = 0;
};
TimingDpResult timing_driven_swaps(const netlist::Design& design,
                                   const WirelengthModel& wl, sta::Timer& timer,
                                   std::span<double> x, std::span<double> y,
                                   double tns_weight, int max_passes = 2);

}  // namespace dtp::placer
