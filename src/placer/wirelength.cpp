#include "placer/wirelength.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "kernels/kernel_backend.h"
#include "obs/trace.h"

namespace dtp::placer {

using netlist::CellId;
using netlist::NetId;
using netlist::PinId;

WirelengthModel::WirelengthModel(const netlist::Design& design,
                                 size_t ignore_degree)
    : design_(&design) {
  const netlist::Netlist& nl = design.netlist;
  net_weights_.assign(nl.num_nets(), 1.0);
  for (size_t n = 0; n < nl.num_nets(); ++n) {
    const netlist::Net& net = nl.net(static_cast<NetId>(n));
    if (net.pins.size() >= 2 && net.pins.size() <= ignore_degree)
      nets_.push_back(static_cast<NetId>(n));
  }
}

double WirelengthModel::hpwl(std::span<const double> x,
                             std::span<const double> y) const {
  const netlist::Netlist& nl = design_->netlist;
  double total = 0.0;
  for (NetId n : nets_) {
    const netlist::Net& net = nl.net(n);
    double xl = 1e300, xh = -1e300, yl = 1e300, yh = -1e300;
    for (PinId p : net.pins) {
      const CellId c = nl.pin(p).cell;
      const Vec2 off = nl.pin_offset(p);
      const double px = x[static_cast<size_t>(c)] + off.x;
      const double py = y[static_cast<size_t>(c)] + off.y;
      xl = std::min(xl, px);
      xh = std::max(xh, px);
      yl = std::min(yl, py);
      yh = std::max(yh, py);
    }
    total += net_weights_[static_cast<size_t>(n)] * ((xh - xl) + (yh - yl));
  }
  return total;
}

double WirelengthModel::hpwl_unweighted(std::span<const double> x,
                                        std::span<const double> y) const {
  const netlist::Netlist& nl = design_->netlist;
  double total = 0.0;
  for (NetId n : nets_) {
    const netlist::Net& net = nl.net(n);
    double xl = 1e300, xh = -1e300, yl = 1e300, yh = -1e300;
    for (PinId p : net.pins) {
      const CellId c = nl.pin(p).cell;
      const Vec2 off = nl.pin_offset(p);
      const double px = x[static_cast<size_t>(c)] + off.x;
      const double py = y[static_cast<size_t>(c)] + off.y;
      xl = std::min(xl, px);
      xh = std::max(xh, px);
      yl = std::min(yl, py);
      yh = std::max(yh, py);
    }
    total += (xh - xl) + (yh - yl);
  }
  return total;
}

double WirelengthModel::value_and_gradient(std::span<const double> x,
                                           std::span<const double> y,
                                           std::span<double> gx,
                                           std::span<double> gy) const {
  DTP_TRACE_SCOPE("wirelength_grad");
  const netlist::Netlist& nl = design_->netlist;
  const kernels::KernelBackend& kb = kernels::backend();
  double total = 0.0;
  // Per-net pin scratch plus the WA kernel's exp scratch (ep/em) — the
  // backend entry points never allocate, so the caller owns all of it.
  thread_local std::vector<double> px, py, dgx, dgy, ep, em;
  for (NetId n : nets_) {
    const netlist::Net& net = nl.net(n);
    const size_t deg = net.pins.size();
    const double w = net_weights_[static_cast<size_t>(n)];
    px.resize(deg);
    py.resize(deg);
    dgx.resize(deg);
    dgy.resize(deg);
    ep.resize(deg);
    em.resize(deg);
    for (size_t i = 0; i < deg; ++i) {
      const PinId p = net.pins[i];
      const CellId c = nl.pin(p).cell;
      const Vec2 off = nl.pin_offset(p);
      px[i] = x[static_cast<size_t>(c)] + off.x;
      py[i] = y[static_cast<size_t>(c)] + off.y;
    }
    total += w * kb.wa_axis(px.data(), deg, gamma_, dgx.data(), ep.data(),
                            em.data());
    total += w * kb.wa_axis(py.data(), deg, gamma_, dgy.data(), ep.data(),
                            em.data());
    for (size_t i = 0; i < deg; ++i) {
      const CellId c = nl.pin(net.pins[i]).cell;
      gx[static_cast<size_t>(c)] += w * dgx[i];
      gy[static_cast<size_t>(c)] += w * dgy[i];
    }
  }
  return total;
}

std::vector<double> WirelengthModel::cell_incidence_weights() const {
  const netlist::Netlist& nl = design_->netlist;
  std::vector<double> out(nl.num_cells(), 0.0);
  for (NetId n : nets_) {
    const double w = net_weights_[static_cast<size_t>(n)];
    for (PinId p : nl.net(n).pins)
      out[static_cast<size_t>(nl.pin(p).cell)] += w;
  }
  return out;
}

}  // namespace dtp::placer
