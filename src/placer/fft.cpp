#include "placer/fft.h"

#include <cmath>
#include <memory>

#include "common/assert.h"

namespace dtp::placer {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Fft::Fft(size_t n) : n_(n) {
  DTP_ASSERT_MSG(is_power_of_two(n), "FFT size must be a power of two");
  bit_reverse_.resize(n);
  size_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  for (size_t i = 0; i < n; ++i) {
    size_t r = 0;
    for (size_t b = 0; b < bits; ++b)
      if (i & (size_t{1} << b)) r |= size_t{1} << (bits - 1 - b);
    bit_reverse_[i] = r;
  }
  tw_re_.resize(n / 2);
  tw_im_.resize(n / 2);
  for (size_t k = 0; k < n / 2; ++k) {
    tw_re_[k] = std::cos(2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
    tw_im_[k] = -std::sin(2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
  }
}

void Fft::transform(std::vector<double>& re, std::vector<double>& im,
                    bool invert) const {
  DTP_ASSERT(re.size() == n_ && im.size() == n_);
  for (size_t i = 0; i < n_; ++i) {
    const size_t j = bit_reverse_[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (size_t len = 2; len <= n_; len <<= 1) {
    const size_t step = n_ / len;
    for (size_t block = 0; block < n_; block += len) {
      for (size_t k = 0; k < len / 2; ++k) {
        const size_t t = k * step;
        const double wr = tw_re_[t];
        const double wi = invert ? -tw_im_[t] : tw_im_[t];
        const size_t a = block + k;
        const size_t b = a + len / 2;
        const double xr = re[b] * wr - im[b] * wi;
        const double xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] += xr;
        im[a] += xi;
      }
    }
  }
}

void Fft::forward(std::vector<double>& re, std::vector<double>& im) const {
  transform(re, im, /*invert=*/false);
}

void Fft::inverse(std::vector<double>& re, std::vector<double>& im) const {
  transform(re, im, /*invert=*/true);
}

HalfSampleTransform::HalfSampleTransform(size_t m) : m_(m) {
  DTP_ASSERT(m >= 2);
  if (is_power_of_two(m)) {
    fft_ = std::make_unique<Fft>(2 * m);
    rot_re_.resize(m);
    rot_im_.resize(m);
    for (size_t u = 0; u < m; ++u) {
      const double theta = kPi * static_cast<double>(u) / (2.0 * static_cast<double>(m));
      rot_re_[u] = std::cos(theta);
      rot_im_[u] = std::sin(theta);  // e^{+i theta}; conjugate applied as needed
    }
  } else {
    cos_tab_.resize(m * m);
    sin_tab_.resize(m * m);
    for (size_t u = 0; u < m; ++u)
      for (size_t x = 0; x < m; ++x) {
        const double theta =
            kPi * static_cast<double>(u) * (static_cast<double>(x) + 0.5) /
            static_cast<double>(m);
        cos_tab_[u * m + x] = std::cos(theta);
        sin_tab_[u * m + x] = std::sin(theta);
      }
  }
}

void HalfSampleTransform::dct2(const double* in, double* out) const {
  if (!fft_) {
    for (size_t u = 0; u < m_; ++u) {
      double acc = 0.0;
      const double* row = cos_tab_.data() + u * m_;
      for (size_t x = 0; x < m_; ++x) acc += in[x] * row[x];
      out[u] = acc;
    }
    return;
  }
  const size_t n = 2 * m_;
  scratch_re_.assign(n, 0.0);
  scratch_im_.assign(n, 0.0);
  for (size_t x = 0; x < m_; ++x) scratch_re_[x] = in[x];
  fft_->forward(scratch_re_, scratch_im_);
  // X_u = Re( e^{-i pi u/(2m)} V_u ).
  for (size_t u = 0; u < m_; ++u)
    out[u] = rot_re_[u] * scratch_re_[u] + rot_im_[u] * scratch_im_[u];
}

void HalfSampleTransform::eval_cos(const double* in, double* out) const {
  if (!fft_) {
    for (size_t x = 0; x < m_; ++x) {
      double acc = 0.0;
      for (size_t u = 0; u < m_; ++u) acc += in[u] * cos_tab_[u * m_ + x];
      out[x] = acc;
    }
    return;
  }
  const size_t n = 2 * m_;
  scratch_re_.assign(n, 0.0);
  scratch_im_.assign(n, 0.0);
  // c_u = a_u e^{+i pi u/(2m)}; W = IDFT(c) (no 1/N); f(x) = Re W_x.
  for (size_t u = 0; u < m_; ++u) {
    scratch_re_[u] = in[u] * rot_re_[u];
    scratch_im_[u] = in[u] * rot_im_[u];
  }
  fft_->inverse(scratch_re_, scratch_im_);
  for (size_t x = 0; x < m_; ++x) out[x] = scratch_re_[x];
}

void HalfSampleTransform::eval_sin(const double* in, double* out) const {
  if (!fft_) {
    for (size_t x = 0; x < m_; ++x) {
      double acc = 0.0;
      for (size_t u = 0; u < m_; ++u) acc += in[u] * sin_tab_[u * m_ + x];
      out[x] = acc;
    }
    return;
  }
  const size_t n = 2 * m_;
  scratch_re_.assign(n, 0.0);
  scratch_im_.assign(n, 0.0);
  for (size_t u = 0; u < m_; ++u) {
    scratch_re_[u] = in[u] * rot_re_[u];
    scratch_im_[u] = in[u] * rot_im_[u];
  }
  fft_->inverse(scratch_re_, scratch_im_);
  for (size_t x = 0; x < m_; ++x) out[x] = scratch_im_[x];
}

}  // namespace dtp::placer
