// Weighted-average (WA) smooth wirelength model with per-net weights.
//
// For each net and axis, the WA estimator of max(x) - min(x) is
//
//   WA_x = sum(x_i e^{x_i/g}) / sum(e^{x_i/g})
//        - sum(x_i e^{-x_i/g}) / sum(e^{-x_i/g})
//
// which converges to HPWL as g -> 0 and is smooth everywhere — the standard
// wirelength objective of ePlace/DREAMPlace (the paper's WL term in Eq. 6).
// Gradients flow to pin coordinates and fold into cell coordinates through
// the rigid pin offsets.  Per-net weights w_e scale both value and gradient,
// which is exactly the hook the net-weighting baseline [24] drives.
//
// Nets above `ignore_degree` (e.g. the clock net) are skipped, matching
// standard placer practice.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace dtp::placer {

class WirelengthModel {
 public:
  WirelengthModel(const netlist::Design& design, size_t ignore_degree = 128);

  // Smoothing parameter in microns (same scale as coordinates).
  void set_gamma(double gamma) { gamma_ = gamma; }
  double gamma() const { return gamma_; }

  std::span<double> net_weights() { return net_weights_; }
  std::span<const double> net_weights() const { return net_weights_; }

  // Exact weighted HPWL at the given cell positions.
  double hpwl(std::span<const double> x, std::span<const double> y) const;
  // Unweighted exact HPWL (reporting; the paper's Table 3 HPWL column).
  double hpwl_unweighted(std::span<const double> x,
                         std::span<const double> y) const;

  // Smooth WA wirelength; accumulates (+=) its gradient into gx/gy.
  double value_and_gradient(std::span<const double> x, std::span<const double> y,
                            std::span<double> gx, std::span<double> gy) const;

  // Sum of weights of nets incident to each cell — the wirelength part of the
  // gradient preconditioner (DREAMPlace's pin-weight preconditioning).
  std::vector<double> cell_incidence_weights() const;

  const std::vector<netlist::NetId>& active_nets() const { return nets_; }

 private:
  const netlist::Design* design_;
  std::vector<netlist::NetId> nets_;  // placement nets (degree filter applied)
  std::vector<double> net_weights_;   // indexed by NetId (all nets)
  double gamma_ = 1.0;
};

}  // namespace dtp::placer
