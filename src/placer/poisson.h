// Spectral Poisson solver for electrostatic placement density (ePlace/
// DREAMPlace formulation, the paper's density substrate).
//
// Solves  laplacian(psi) = -rho  on an m x m bin grid over a W x H core with
// Neumann (reflecting) boundaries.  The Neumann eigenbasis on the grid is the
// DCT-II basis cos(pi*u*(x+0.5)/m) with physical wavenumber k_u = pi*u/W, so
//
//   rho_hat  = DCT2(rho)                      (series coefficients)
//   psi_hat  = rho_hat / (k_u^2 + k_v^2)      (DC term dropped)
//   psi      = IDCT2(psi_hat)
//   field_x  = -d(psi)/dx = sum psi_hat * k_u * sin(k_u x) cos(k_v y)
//   field_y  analogously with cos*sin.
//
// For power-of-two grids every transform row runs as ONE size-m/2 complex
// FFT of the packed real sequence (kernels::DctPlan, arXiv 2510.21547) —
// roughly 4x fewer butterflies than the size-2m complex FFT this solver
// used before the kernel-backend seam; other sizes fall back to direct
// O(m^3) cosine/sine sums (kernels::HalfSampleDirect, also the test oracle)
// with a one-time warning and the `placer.poisson.slow_path` counter.  All
// hot loops dispatch through kernels::backend().
#pragma once

#include <memory>
#include <vector>

namespace dtp::placer {

class PoissonSolver {
 public:
  // m: bins per dimension (grid is m x m); width/height: core extent in
  // microns (sets the physical wavenumbers).
  PoissonSolver(int m, double width, double height);

  int grid() const { return m_; }

  // rho: bin densities, row-major rho[x * m + y], in area units (splat of
  // cell areas; the solver is linear so scaling is the caller's business).
  // Outputs (resized): potential psi and field components per bin.
  void solve(const std::vector<double>& rho, std::vector<double>& psi,
             std::vector<double>& field_x, std::vector<double>& field_y) const;

  // System energy 0.5 * sum rho * psi of the last-solved configuration given
  // the same rho/psi pair (monitoring only).
  static double energy(const std::vector<double>& rho,
                       const std::vector<double>& psi);

  // True when the FFT fast path is active (power-of-two grid).
  bool uses_fft() const;

 private:
  struct Impl;
  int m_;
  double wu_scale_x_, wu_scale_y_;  // k_u = u * pi / W (resp. H)
  // Shared so the solver stays copyable; the scratch inside is per-solve
  // transient state only (solve() is not concurrency-safe on one instance).
  std::shared_ptr<Impl> impl_;
};

}  // namespace dtp::placer
