// Wire protocol of the placement service: newline-delimited JSON over a
// local stream socket (DESIGN.md §12).
//
// Each request is one JSON object on one line; each response is one JSON
// object on one line.  Requests:
//
//   {"cmd":"ping"}                         -> {"ok":true,"pong":true}
//   {"cmd":"submit","spec":{...}}          -> {"ok":true,"id":N}
//                                          |  {"ok":false,"id":N,"error":
//                                             "rejected:overload"}
//   {"cmd":"status","id":N}                -> {"ok":true,"job":{...}}
//   {"cmd":"list"}                         -> {"ok":true,"jobs":[...]}
//   {"cmd":"cancel"|"pause"|"resume","id":N} -> {"ok":true}
//   {"cmd":"stats"}                        -> {"ok":true,"stats":{...}}
//   {"cmd":"metrics"}                      -> {"ok":true,"format":
//                                             "prometheus","text":"..."}
//   {"cmd":"profile","window_sec":S}       -> {"ok":true,"profile":{...}}
//                                             (dtp.profile.v1 hot-spot
//                                              summary; window_sec > 0
//                                              restricts it to roughly the
//                                              last S seconds; error when
//                                              the daemon runs with
//                                              --profile-hz 0)
//   {"cmd":"events","since":SEQ}           -> {"ok":true,"events":[...],
//                                             "next_since":N,"gap":K}
//                                             (since defaults to 0 = all the
//                                              ring still holds; gap > 0
//                                              means the ring overflowed past
//                                              the cursor)
//   {"cmd":"drain"}                        -> {"ok":true,"draining":true}
//
// Malformed input of any kind (junk bytes, valid JSON of the wrong shape,
// unknown cmd) earns an {"ok":false,"error":...} response — never a crash,
// never a dropped connection.  The dispatch is a pure function of
// (manager, request line), so the protocol tests run without sockets.
#pragma once

#include <string>

namespace dtp::serve {

class JobManager;

// Handles one request line; returns the response line (no trailing newline).
// Sets *drain_requested on {"cmd":"drain"} so the server can exit its loop
// after flushing the response.
std::string handle_request(JobManager& manager, const std::string& line,
                           bool* drain_requested);

}  // namespace dtp::serve
