// Job model for the placement service (DESIGN.md §12).
//
// A JobSpec is what a client submits over the wire (or what the journal
// replays after a restart): the workload, the placement mode, and the job's
// scheduling envelope — priority, relative deadline, per-attempt wall budget,
// retry budget — plus the deterministic control hooks the soak tests use.
//
// Job lifecycle:
//
//   submit ──> Queued ──> Running ──> Done | Failed | TimedOut | Cancelled
//     │          ^           │
//     │          └──────── Paused   (preemption / client pause / drain;
//     │                              re-enters Queued with a checkpoint)
//     └──> Rejected                 (admission control: overload, invalid
//                                    spec, or draining — never enqueued)
//
// Every *accepted* job reaches exactly one terminal state; Rejected is the
// only answer a job can get without being accepted.
#pragma once

#include <cstdint>
#include <string>

#include "common/json_parse.h"

namespace dtp {
class JsonWriter;
}

namespace dtp::serve {

enum class JobState : uint8_t {
  Queued,
  Running,
  Paused,
  Done,
  Failed,
  TimedOut,
  Cancelled,
  Rejected,
};

const char* job_state_name(JobState s);
bool job_state_is_terminal(JobState s);

struct JobSpec {
  // Workload: either a synthetic demo design (demo_cells > 0) or input files.
  int demo_cells = 0;
  uint64_t seed = 1;
  std::string lib_path;
  std::string netlist_path;
  std::string sdc_path;
  double density = 0.7;  // floorplan utilization for file-based jobs

  std::string mode = "dt";  // wl | nw | dt
  int max_iters = 600;

  // Scheduling envelope.
  std::string client = "anon";   // fair-share identity
  int priority = 0;              // higher runs first (and may preempt lower)
  double deadline_sec = 0.0;     // relative to accept; 0 = none.  EDF tiebreak
                                 // in the queue + watchdog timeout once passed.
  double time_budget_sec = 0.0;  // per-attempt wall budget (graceful degrade)
  int max_retries = 2;           // recoverable-failure restarts before fallback

  // Fault-containment drills (same grammar as dtp_place --fault).
  std::string fault_spec;
  uint64_t fault_seed = 1;

  // Deterministic control hooks for the soak tests: fire the matching
  // PlacerControl request at a fixed iteration.  -1 disables.
  int cancel_at_iter = -1;
  int pause_at_iter = -1;

  void to_json(JsonWriter& w) const;
  // Tolerant field-wise parse (missing fields keep defaults); throws
  // std::runtime_error only if `v` is not an object.
  static JobSpec from_json(const JsonValue& v);
  // "" when the spec is runnable; otherwise the rejection reason.
  std::string validate() const;
};

// Final numbers of the (last) placement attempt.
struct JobOutcome {
  int iterations = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double runtime_sec = 0.0;
  std::string health;       // robust::run_health_name
  std::string stop_reason;  // placer::stop_reason_name
};

// The manager's per-job control block, snapshotted for status responses and
// journal terminal events.
struct JobRecord {
  uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::Queued;
  std::string detail;    // human-readable reason for the current state
  int attempts = 0;      // placement attempts started
  int retries = 0;       // recoverable-failure restarts consumed
  int preemptions = 0;   // times kicked back to the queue by a higher-prio job
  bool degraded = false;   // WL-only fallback engaged
  bool recovered = false;  // re-admitted from the journal after a restart
  double wait_sec = 0.0;   // cumulative time spent queued
  double run_sec = 0.0;    // cumulative time spent running
  JobOutcome outcome;

  void to_json(JsonWriter& w) const;
};

}  // namespace dtp::serve
