// Live-daemon telemetry plane: the event ring and the cross-job span log
// (DESIGN.md §13).
//
// The daemon's own observability is split from the placer's (obs/trace.h):
// placer spans are per-thread string-literal rings tuned for kernel hot
// paths, while the serve plane needs *job-tracked* records with dynamic
// names and a stable cursor for remote tailing.  Two structures:
//
//   EventRing — a bounded ring of daemon lifecycle events (admissions,
//     rejections, preemptions, recoveries, terminal states, watchdog fires).
//     Each event is stamped with a wall clock ts_ms and a ring-local
//     *contiguous* seq, so {"cmd":"events","since":SEQ} tailing is
//     incremental and an overflow past the client's cursor is reported as an
//     explicit gap instead of silently skipped records.
//
//   SpanLog — the cross-job span store: queue-wait/run/checkpoint/attempt
//     spans and preempt/deadline instants, each on the owning job's id as
//     its track.  to_chrome_json() merges a whole multi-tenant daemon
//     session into one Chrome trace_event file (chrome://tracing,
//     ui.perfetto.dev): pid 1 = the daemon, tid = job id, thread_name
//     metadata names each track "job-N" (track 0 is the daemon itself).
//
// Both are bounded (events overwrite oldest, spans drop newest past the cap
// with a counter) and thread-safe behind their own mutexes, so recording
// from the manager's locked regions and reading from the protocol thread
// never interleave badly.  Neither touches placement math: the bitwise
// identity of results with the plane attached is covered by the golden
// tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dtp::serve {

struct ServeEvent {
  uint64_t seq = 0;    // ring-local, contiguous from 1
  int64_t ts_ms = 0;   // wall clock (common/wallclock.h)
  std::string kind;    // accept|reject|state|preempt|recover|watchdog|
                       // terminal|drain
  uint64_t job = 0;    // 0 = daemon-level event
  std::string state;   // job_state_name() when the event carries one
  std::string detail;
};

class EventRing {
 public:
  explicit EventRing(size_t capacity);

  // Stamps seq + ts_ms and appends, overwriting the oldest when full.
  // Returns the assigned seq.
  uint64_t push(const std::string& kind, uint64_t job,
                const std::string& state = "", const std::string& detail = "");

  // Events with seq > since, oldest first.  *next_since is the cursor for
  // the following call (== since when nothing new); *gap counts events that
  // overflowed past the cursor (client missed them — ring too small or
  // tailing too slowly).
  std::vector<ServeEvent> since(uint64_t since_seq, uint64_t* next_since,
                                uint64_t* gap) const;

  uint64_t last_seq() const;
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  std::vector<ServeEvent> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 1;
};

struct JobSpan {
  std::string name;
  uint64_t track = 0;     // job id, 0 = daemon
  double ts_sec = 0.0;    // start, seconds since the log's epoch
  double dur_sec = 0.0;   // 0 duration = instant event
  bool instant = false;
  std::string detail;     // -> args.detail in the trace file
};

class SpanLog {
 public:
  explicit SpanLog(size_t capacity = 1 << 16);

  // Seconds since this log's construction — the shared clock every recorder
  // (manager, runner) uses so spans in the merged file line up.
  double now_sec() const;
  // Wall-clock ms of the epoch, emitted into the trace metadata so the file
  // can be merged with ts_ms-stamped JSONL streams.
  int64_t epoch_wall_ms() const { return epoch_wall_ms_; }

  void span(const std::string& name, uint64_t track, double t0_sec,
            double t1_sec, const std::string& detail = "");
  void instant(const std::string& name, uint64_t track, double t_sec,
               const std::string& detail = "");

  size_t size() const;
  size_t dropped() const;
  std::vector<JobSpan> spans() const;
  // Distinct tracks seen (jobs + daemon), for the ≥2-tracks CI assertion.
  size_t num_tracks() const;

  // One Chrome trace_event document for the whole daemon session: complete
  // ("X") and instant ("i") events plus process/thread_name metadata.
  std::string to_chrome_json() const;
  bool write_json(const std::string& path) const;

 private:
  void record(JobSpan s);

  mutable std::mutex mutex_;
  size_t capacity_;
  std::vector<JobSpan> spans_;
  size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  int64_t epoch_wall_ms_ = 0;
};

}  // namespace dtp::serve
