// Bounded admission queue with a deterministic scheduling policy
// (DESIGN.md §12).
//
// The queue itself is a passive, unsynchronized structure — the JobManager
// serializes access under its own mutex, which keeps the scheduling policy a
// pure function that the unit tests can drive directly.
//
// pick() order (first rule that discriminates wins):
//   1. priority, descending            — urgent work first;
//   2. client running load, ascending  — fair share: the client with the
//      fewest jobs currently on a worker goes first among equals;
//   3. absolute deadline, ascending    — EDF among fair equals (no deadline
//      sorts last);
//   4. submission sequence, ascending  — FIFO as the final tiebreak, so the
//      whole policy is a strict weak order and scheduling is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtp::serve {

struct QueueEntry {
  uint64_t id = 0;
  int priority = 0;
  std::string client;
  double deadline_abs = 0.0;  // seconds on the manager clock; 0 = none
  uint64_t seq = 0;           // admission order
};

class JobQueue {
 public:
  explicit JobQueue(size_t capacity) : capacity_(capacity) {}

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return entries_.size() >= capacity_; }

  // Admission: false when the queue is at capacity (the caller sheds the
  // job).  force=true bypasses the cap — requeues of already-admitted jobs
  // (preemption, resume) must never be shed by their own admission control.
  bool push(const QueueEntry& e, bool force = false);

  // Removes and returns the best runnable entry per the policy above.
  // `running_per_client` maps client -> number of currently running jobs.
  // Returns false when empty.
  bool pick(const std::map<std::string, int>& running_per_client,
            QueueEntry* out);

  // Removes a specific job (cancel / deadline-expired-in-queue).
  bool remove(uint64_t id);
  bool contains(uint64_t id) const;

  const std::vector<QueueEntry>& entries() const { return entries_; }

 private:
  size_t capacity_;
  std::vector<QueueEntry> entries_;
};

}  // namespace dtp::serve
