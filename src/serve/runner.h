// Per-job fault-containment harness (DESIGN.md §12).
//
// JobRunner executes one accepted job to a terminal state (or to Paused, the
// preemption/drain parking state) inside a containment envelope:
//
//   * cooperative control — the shared JobCtl carries the PlacerControl block
//     the manager's scheduler/watchdog uses for cancel, pause/preempt and
//     deadline enforcement; the run loop honours it between iterations;
//   * per-attempt wall budget — spec.time_budget_sec rides the placer's
//     graceful-degradation watchdog (timing cut at 70%, early stop with a
//     valid placement at 100%);
//   * bounded retry with backoff — a run whose recovery budget is exhausted
//     (health == Failed) is restarted from scratch up to spec.max_retries
//     times, with exponential backoff between attempts;
//   * degradation before giving up — when retries are spent, one final
//     attempt runs in wirelength-only mode (timing faults cannot reach it);
//     only if that also fails is the job Failed;
//   * checkpointed pause — a Paused exit seals the optimizer state into the
//     job's checkpoint, so the manager can requeue and later resume exactly
//     where the run stopped.
//
// Every attempt appends to the job's JSONL artifact stream
// (<artifacts>/job-<id>.jsonl), so a preempted-and-resumed job reads as one
// continuous trajectory.  All placement work happens on the caller's thread;
// the runner itself owns no threads.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "liberty/cell_library.h"
#include "placer/global_placer.h"
#include "robust/checkpoint.h"
#include "serve/job.h"
#include "serve/telemetry.h"

namespace dtp::serve {

// Control block shared between the manager (scheduler, watchdog, protocol
// threads) and the worker running the job.
struct JobCtl {
  placer::PlacerControl placer;
  // Set by the watchdog before its cancel request, so the runner reports
  // TimedOut rather than Cancelled.
  std::atomic<bool> deadline_exceeded{false};
  // Set by the scheduler before its pause request, so the manager requeues
  // the job instead of parking it for a client resume.
  std::atomic<bool> preempt{false};
};

// Process-wide cache of parsed Liberty libraries: workers share one immutable
// library object per path (and one synthetic library) instead of re-parsing
// per job.  Thread-safe.
class LibraryCache {
 public:
  std::shared_ptr<const liberty::CellLibrary> synthetic();
  // Throws std::runtime_error on parse failure (not cached).
  std::shared_ptr<const liberty::CellLibrary> file(const std::string& path);

 private:
  std::mutex mutex_;
  std::shared_ptr<const liberty::CellLibrary> synthetic_;
  std::map<std::string, std::shared_ptr<const liberty::CellLibrary>> by_path_;
};

struct RunnerOptions {
  std::string artifact_dir;  // "" = no per-job JSONL streams
  int backoff_base_ms = 50;  // doubles per retry, capped at 2 s; 0 = no sleep
  SpanLog* spans = nullptr;  // cross-job span log; attempt/backoff spans land
                             // on the job-id track (null = no tracing)
};

class JobRunner {
 public:
  JobRunner(LibraryCache& libs, RunnerOptions opts)
      : libs_(&libs), opts_(std::move(opts)) {}

  // Drives `rec` to a terminal state or to Paused, updating state/detail/
  // attempts/retries/degraded/outcome in place.  `ckpt` is the job's resume
  // slot: a verified checkpoint on entry resumes the descent; a Paused exit
  // re-seals it with the pause state (invalidated otherwise).
  void run(JobRecord& rec, JobCtl& ctl, robust::Checkpoint& ckpt);

 private:
  LibraryCache* libs_;
  RunnerOptions opts_;
};

}  // namespace dtp::serve
