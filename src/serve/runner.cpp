#include "serve/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "io/sdc.h"
#include "io/verilog.h"
#include "liberty/liberty_io.h"
#include "liberty/synth_library.h"
#include "obs/jsonl.h"
#include "placer/run_report.h"
#include "robust/validate.h"
#include "sta/timing_graph.h"
#include "workload/circuit_gen.h"

namespace dtp::serve {

std::shared_ptr<const liberty::CellLibrary> LibraryCache::synthetic() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!synthetic_) {
    synthetic_ = std::make_shared<const liberty::CellLibrary>(
        liberty::make_synthetic_library());
  }
  return synthetic_;
}

std::shared_ptr<const liberty::CellLibrary> LibraryCache::file(
    const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_path_.find(path);
    if (it != by_path_.end()) return it->second;
  }
  // Parse outside the lock: a slow parse must not stall workers that only
  // need an already-cached library.
  auto lib = std::make_shared<const liberty::CellLibrary>(
      liberty::parse_liberty_file(path));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_path_.emplace(path, std::move(lib));
  return it->second;
}

namespace {

// Builds the job's design: a deterministic synthetic workload for demo jobs,
// or parsed inputs with the dtp_place square-core floorplan for file jobs.
// Throws std::runtime_error / robust::ValidationError on bad input.
std::unique_ptr<netlist::Design> build_design(
    LibraryCache& libs, const JobSpec& spec, uint64_t job_id,
    std::shared_ptr<const liberty::CellLibrary>* lib_out) {
  if (spec.demo_cells > 0) {
    *lib_out = libs.synthetic();
    workload::WorkloadOptions wopts;
    wopts.num_cells = spec.demo_cells;
    wopts.seed = spec.seed;
    return std::make_unique<netlist::Design>(workload::generate_design(
        **lib_out, wopts, "job-" + std::to_string(job_id)));
  }
  *lib_out = libs.file(spec.lib_path);
  auto design = std::make_unique<netlist::Design>(
      io::read_verilog_file(**lib_out, spec.netlist_path));
  if (!spec.sdc_path.empty())
    io::read_sdc_file(spec.sdc_path, design->constraints);
  double area = 0.0, row_h = 2.0;
  for (size_t c = 0; c < design->netlist.num_cells(); ++c) {
    const auto& m = design->netlist.lib_cell_of(static_cast<int>(c));
    area += m.width * m.height;
    if (!m.is_port()) row_h = m.height;
  }
  const double side =
      std::ceil(std::sqrt(area / spec.density) / row_h) * row_h;
  design->floorplan.core = Rect(0, 0, side, side);
  design->floorplan.row_height = row_h;
  design->floorplan.site_width = 0.5;
  Rng rng(spec.seed);
  size_t pad_i = 0, pad_n = 0;
  for (size_t c = 0; c < design->netlist.num_cells(); ++c)
    if (design->netlist.cell(static_cast<int>(c)).fixed) ++pad_n;
  for (size_t c = 0; c < design->netlist.num_cells(); ++c) {
    if (design->netlist.cell(static_cast<int>(c)).fixed) {
      const double t = 4.0 * static_cast<double>(pad_i++) /
                       static_cast<double>(std::max<size_t>(1, pad_n));
      design->cell_x[c] =
          t < 1 ? t * side : (t < 2 ? side : (t < 3 ? (3 - t) * side : 0.0));
      design->cell_y[c] =
          t < 1 ? 0.0
                : (t < 2 ? (t - 1) * side : (t < 3 ? side : (4 - t) * side));
    } else {
      design->cell_x[c] =
          std::clamp(side * 0.5 + rng.normal(0, side * 0.06), 0.0, side - 2);
      design->cell_y[c] =
          std::clamp(side * 0.5 + rng.normal(0, side * 0.06), 0.0, side - 2);
    }
  }
  return design;
}

placer::PlacerMode parse_mode(const std::string& mode) {
  if (mode == "wl") return placer::PlacerMode::WirelengthOnly;
  if (mode == "nw") return placer::PlacerMode::NetWeighting;
  return placer::PlacerMode::DiffTiming;
}

}  // namespace

void JobRunner::run(JobRecord& rec, JobCtl& ctl, robust::Checkpoint& ckpt) {
  const JobSpec& spec = rec.spec;
  const std::string job_name = "job-" + std::to_string(rec.id);

  obs::JsonlWriter jsonl;
  std::string jsonl_path;
  if (!opts_.artifact_dir.empty()) {
    jsonl_path = opts_.artifact_dir + "/" + job_name + ".jsonl";
    jsonl.open(jsonl_path, /*append=*/true);
  }
  auto abort_record = [&](const std::string& stage, const std::string& error) {
    if (jsonl.is_open())
      placer::append_abort_record(jsonl, {job_name, spec.mode}, stage, error,
                                  2);
  };

  // ---- input stage: anything thrown here is a definite, unretryable Failed.
  std::shared_ptr<const liberty::CellLibrary> lib;
  std::unique_ptr<netlist::Design> design;
  try {
    design = build_design(*libs_, spec, rec.id, &lib);
  } catch (const std::exception& e) {
    rec.state = JobState::Failed;
    rec.detail = std::string("input: ") + e.what();
    abort_record("input", e.what());
    return;
  }
  {
    const robust::ValidationReport report = robust::validate(*design);
    if (!report.ok()) {
      rec.state = JobState::Failed;
      rec.detail = "invalid design: " + report.to_string();
      abort_record("validate", report.to_string());
      return;
    }
  }
  sta::TimingGraph graph(design->netlist);

  // ---- attempt loop: retry w/ backoff, then WL-only fallback, then Failed.
  for (;;) {
    // A cancel/deadline that lands between attempts is honoured here, not
    // only inside the descent loop.
    const uint32_t req =
        ctl.placer.request.load(std::memory_order_acquire);
    if ((req & placer::PlacerControl::kCancel) != 0u) {
      const bool deadline = ctl.deadline_exceeded.load();
      rec.state = deadline ? JobState::TimedOut : JobState::Cancelled;
      rec.detail =
          deadline ? "deadline exceeded between attempts" : "cancelled";
      ckpt.invalidate();
      return;
    }

    const std::string mode = rec.degraded ? "wl" : spec.mode;
    placer::GlobalPlacerOptions popts;
    popts.mode = parse_mode(mode);
    popts.max_iters = spec.max_iters;
    popts.robust.fault_spec = spec.fault_spec;
    popts.robust.fault_seed = spec.fault_seed;
    popts.control = &ctl.placer;
    popts.time_budget_sec = spec.time_budget_sec;
    // The deterministic hooks fire with `iter >= hook`, so a resumed or
    // retried attempt would re-trigger them forever: arm them only on the
    // job's very first attempt.
    const bool first_attempt = rec.attempts == 0 && !ckpt.verify();
    ctl.placer.cancel_at_iter = first_attempt ? spec.cancel_at_iter : -1;
    ctl.placer.pause_at_iter = first_attempt ? spec.pause_at_iter : -1;
    robust::Checkpoint attempt_ckpt;
    popts.checkpoint_out = &attempt_ckpt;
    if (ckpt.verify()) popts.resume_from = &ckpt;

    ++rec.attempts;
    placer::PlaceResult res;
    bool threw = false;
    std::string threw_what;
    const double span_t0 = opts_.spans ? opts_.spans->now_sec() : 0.0;
    try {
      placer::GlobalPlacer gp(*design, graph, popts);
      res = gp.run();
    } catch (const std::exception& e) {
      threw = true;
      threw_what = e.what();
    }
    if (opts_.spans) {
      opts_.spans->span(
          "attempt", rec.id, span_t0, opts_.spans->now_sec(),
          mode + " #" + std::to_string(rec.attempts) +
              (threw ? " threw"
                     : std::string(" ") +
                           placer::stop_reason_name(res.stop_reason)));
    }

    if (!threw) {
      rec.outcome.iterations = res.iterations;
      rec.outcome.hpwl = res.hpwl;
      rec.outcome.overflow = res.overflow;
      rec.outcome.runtime_sec += res.runtime_sec;
      rec.outcome.health = robust::run_health_name(res.health);
      rec.outcome.stop_reason = placer::stop_reason_name(res.stop_reason);
      if (jsonl.is_open())
        placer::append_run_jsonl(jsonl, res, {job_name, mode});

      switch (res.stop_reason) {
        case placer::StopReason::Paused:
          if (attempt_ckpt.verify()) {
            ckpt = attempt_ckpt;
          } else {
            ckpt.invalidate();  // un-resumable pause restarts from scratch
          }
          rec.state = JobState::Paused;
          rec.detail = ctl.preempt.load() ? "preempted" : "paused";
          return;
        case placer::StopReason::Cancelled: {
          const bool deadline = ctl.deadline_exceeded.load();
          rec.state = deadline ? JobState::TimedOut : JobState::Cancelled;
          rec.detail = deadline ? "deadline exceeded while running"
                                : "cancelled";
          ckpt.invalidate();
          return;
        }
        case placer::StopReason::TimeBudget:
          rec.state = JobState::TimedOut;
          rec.detail = "time budget exhausted; valid placement retained";
          ckpt.invalidate();
          return;
        case placer::StopReason::Converged:
        case placer::StopReason::MaxIters:
        case placer::StopReason::Aborted:
          if (res.health != robust::RunHealth::Failed) {
            rec.state = JobState::Done;
            rec.detail = res.stop_reason == placer::StopReason::Converged
                             ? "converged"
                             : "iteration budget reached";
            if (rec.degraded) rec.detail += " (wirelength-only fallback)";
            ckpt.invalidate();
            return;
          }
          break;  // recovery budget exhausted: fall through to retry
      }
    }

    // ---- recoverable failure path ----
    const std::string why =
        threw ? threw_what : "recovery budget exhausted";
    ckpt.invalidate();  // a failed attempt's state is not trustworthy
    if (rec.retries < spec.max_retries) {
      ++rec.retries;
      if (opts_.backoff_base_ms > 0) {
        const int shift = std::min(rec.retries - 1, 6);
        const int ms =
            std::min(opts_.backoff_base_ms << shift, 2000);
        const double b0 = opts_.spans ? opts_.spans->now_sec() : 0.0;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        if (opts_.spans)
          opts_.spans->span("backoff", rec.id, b0, opts_.spans->now_sec(),
                            "retry " + std::to_string(rec.retries));
      }
      continue;
    }
    if (!rec.degraded && spec.mode != "wl") {
      rec.degraded = true;  // last resort: timing faults cannot reach WL mode
      continue;
    }
    rec.state = JobState::Failed;
    rec.detail = why + " after " + std::to_string(rec.retries) + " retries" +
                 (rec.degraded ? " and wirelength-only fallback" : "");
    abort_record("placement", rec.detail);
    return;
  }
}

}  // namespace dtp::serve
