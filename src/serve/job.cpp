#include "serve/job.h"

#include <stdexcept>

#include "common/json_writer.h"

namespace dtp::serve {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Paused: return "paused";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::TimedOut: return "timeout";
    case JobState::Cancelled: return "cancelled";
    case JobState::Rejected: return "rejected";
  }
  return "?";
}

bool job_state_is_terminal(JobState s) {
  switch (s) {
    case JobState::Done:
    case JobState::Failed:
    case JobState::TimedOut:
    case JobState::Cancelled:
    case JobState::Rejected:
      return true;
    case JobState::Queued:
    case JobState::Running:
    case JobState::Paused:
      return false;
  }
  return false;
}

void JobSpec::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("demo_cells").value(demo_cells);
  w.key("seed").value(seed);
  if (!lib_path.empty()) w.key("lib").value(lib_path);
  if (!netlist_path.empty()) w.key("netlist").value(netlist_path);
  if (!sdc_path.empty()) w.key("sdc").value(sdc_path);
  w.key("density").value(density);
  w.key("mode").value(mode);
  w.key("max_iters").value(max_iters);
  w.key("client").value(client);
  w.key("priority").value(priority);
  w.key("deadline_sec").value(deadline_sec);
  w.key("time_budget_sec").value(time_budget_sec);
  w.key("max_retries").value(max_retries);
  if (!fault_spec.empty()) {
    w.key("fault").value(fault_spec);
    w.key("fault_seed").value(fault_seed);
  }
  if (cancel_at_iter >= 0) w.key("cancel_at_iter").value(cancel_at_iter);
  if (pause_at_iter >= 0) w.key("pause_at_iter").value(pause_at_iter);
  w.end_object();
}

JobSpec JobSpec::from_json(const JsonValue& v) {
  if (!v.is_object()) throw std::runtime_error("job spec must be an object");
  JobSpec s;
  s.demo_cells = static_cast<int>(v.num_or("demo_cells", 0));
  s.seed = static_cast<uint64_t>(v.num_or("seed", 1));
  s.lib_path = v.str_or("lib", "");
  s.netlist_path = v.str_or("netlist", "");
  s.sdc_path = v.str_or("sdc", "");
  s.density = v.num_or("density", 0.7);
  s.mode = v.str_or("mode", "dt");
  s.max_iters = static_cast<int>(v.num_or("max_iters", 600));
  s.client = v.str_or("client", "anon");
  s.priority = static_cast<int>(v.num_or("priority", 0));
  s.deadline_sec = v.num_or("deadline_sec", 0.0);
  s.time_budget_sec = v.num_or("time_budget_sec", 0.0);
  s.max_retries = static_cast<int>(v.num_or("max_retries", 2));
  s.fault_spec = v.str_or("fault", "");
  s.fault_seed = static_cast<uint64_t>(v.num_or("fault_seed", 1));
  s.cancel_at_iter = static_cast<int>(v.num_or("cancel_at_iter", -1));
  s.pause_at_iter = static_cast<int>(v.num_or("pause_at_iter", -1));
  return s;
}

std::string JobSpec::validate() const {
  const bool demo = demo_cells > 0;
  const bool files = !lib_path.empty() && !netlist_path.empty();
  if (!demo && !files)
    return "spec needs demo_cells > 0 or lib+netlist paths";
  if (demo && files) return "spec has both demo_cells and input files";
  if (demo_cells < 0 || demo_cells > 2000000)
    return "demo_cells out of range [1, 2e6]";
  if (mode != "wl" && mode != "nw" && mode != "dt")
    return "mode must be wl, nw or dt";
  if (max_iters < 1 || max_iters > 100000)
    return "max_iters out of range [1, 1e5]";
  if (priority < -100 || priority > 100)
    return "priority out of range [-100, 100]";
  if (deadline_sec < 0.0 || time_budget_sec < 0.0)
    return "deadline_sec/time_budget_sec must be >= 0";
  if (max_retries < 0 || max_retries > 16)
    return "max_retries out of range [0, 16]";
  if (density <= 0.0 || density > 1.0) return "density out of range (0, 1]";
  return "";
}

void JobRecord::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("id").value(id);
  w.key("state").value(job_state_name(state));
  if (!detail.empty()) w.key("detail").value(detail);
  w.key("attempts").value(attempts);
  w.key("retries").value(retries);
  w.key("preemptions").value(preemptions);
  w.key("degraded").value(degraded);
  w.key("recovered").value(recovered);
  w.key("wait_sec").value(wait_sec);
  w.key("run_sec").value(run_sec);
  if (job_state_is_terminal(state) || state == JobState::Paused) {
    w.key("outcome").begin_object();
    w.key("iterations").value(outcome.iterations);
    w.key("hpwl").value(outcome.hpwl);
    w.key("overflow").value(outcome.overflow);
    w.key("runtime_sec").value(outcome.runtime_sec);
    if (!outcome.health.empty()) w.key("health").value(outcome.health);
    if (!outcome.stop_reason.empty())
      w.key("stop_reason").value(outcome.stop_reason);
    w.end_object();
  }
  w.key("spec");
  spec.to_json(w);
  w.end_object();
}

}  // namespace dtp::serve
