#include "serve/queue.h"

#include <algorithm>
#include <limits>

namespace dtp::serve {

bool JobQueue::push(const QueueEntry& e, bool force) {
  if (full() && !force) return false;
  entries_.push_back(e);
  return true;
}

bool JobQueue::pick(const std::map<std::string, int>& running_per_client,
                    QueueEntry* out) {
  if (entries_.empty()) return false;
  auto load_of = [&](const QueueEntry& e) {
    const auto it = running_per_client.find(e.client);
    return it == running_per_client.end() ? 0 : it->second;
  };
  auto deadline_of = [](const QueueEntry& e) {
    return e.deadline_abs > 0.0 ? e.deadline_abs
                                : std::numeric_limits<double>::infinity();
  };
  auto better = [&](const QueueEntry& a, const QueueEntry& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    const int la = load_of(a), lb = load_of(b);
    if (la != lb) return la < lb;
    const double da = deadline_of(a), db = deadline_of(b);
    if (da != db) return da < db;
    return a.seq < b.seq;
  };
  auto best = std::min_element(
      entries_.begin(), entries_.end(),
      [&](const QueueEntry& a, const QueueEntry& b) { return better(a, b); });
  *out = *best;
  entries_.erase(best);
  return true;
}

bool JobQueue::remove(uint64_t id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool JobQueue::contains(uint64_t id) const {
  for (const QueueEntry& e : entries_)
    if (e.id == id) return true;
  return false;
}

}  // namespace dtp::serve
