#include "serve/manager.h"

#include <filesystem>
#include <fstream>

#include "common/json_parse.h"
#include "common/json_writer.h"
#include "common/logger.h"
#include "common/wallclock.h"
#include "obs/metrics.h"

namespace dtp::serve {

namespace {

void bump(const char* name) {
  obs::MetricsRegistry::instance().counter(name).add();
}

// Every journal record carries the shared timeline stamp (DESIGN.md §13).
void stamp(JsonWriter& w) {
  w.key("ts_ms").value(wall_time_ms());
  w.key("seq").value(journal_seq().next());
}

}  // namespace

JobManager::JobManager(ManagerOptions opts)
    : opts_(std::move(opts)),
      events_(opts_.event_capacity),
      spans_(opts_.span_capacity),
      runner_(libs_, {opts_.artifact_dir, opts_.backoff_base_ms, &spans_}),
      queue_(opts_.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (!opts_.artifact_dir.empty()) {
    std::filesystem::create_directories(opts_.artifact_dir);
    recover_from_journal();
  }
  if (opts_.profile_hz > 0.0) {
    obs::prof::SamplingProfiler::Options popts;
    popts.hz = opts_.profile_hz;
    profiler_ = std::make_unique<obs::prof::SamplingProfiler>(popts);
    profiler_->start();
  }
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

JobManager::~JobManager() { drain(); }

double JobManager::now_sec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

// ---------------------------------------------------------------- journal --

void JobManager::journal_accept(const Job& job) {
  if (!journal_.is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("ev").value("accept");
  w.key("id").value(job.rec.id);
  stamp(w);
  w.key("spec");
  job.rec.spec.to_json(w);
  w.end_object();
  journal_.write_line(w.str());
}

void JobManager::journal_reject(const Job& job) {
  if (!journal_.is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("ev").value("reject");
  w.key("id").value(job.rec.id);
  stamp(w);
  w.key("reason").value(job.rec.detail);
  w.end_object();
  journal_.write_line(w.str());
}

void JobManager::journal_ckpt(Job& job) {
  if (!journal_.is_open() || !job.ckpt.valid()) return;
  const std::string file = "job-" + std::to_string(job.rec.id) + ".ckpt";
  const double t0 = spans_.now_sec();
  if (!job.ckpt.save_file(opts_.artifact_dir + "/" + file)) return;
  spans_.span("checkpoint", job.rec.id, t0, spans_.now_sec(),
              "iter " + std::to_string(job.ckpt.iter()));
  JsonWriter w;
  w.begin_object();
  w.key("ev").value("ckpt");
  w.key("id").value(job.rec.id);
  stamp(w);
  w.key("iter").value(job.ckpt.iter());
  w.key("file").value(file);
  w.end_object();
  journal_.write_line(w.str());
}

void JobManager::journal_terminal(const Job& job) {
  if (!journal_.is_open()) return;
  JsonWriter w;
  w.begin_object();
  w.key("ev").value("terminal");
  w.key("id").value(job.rec.id);
  stamp(w);
  w.key("state").value(job_state_name(job.rec.state));
  if (!job.rec.detail.empty()) w.key("detail").value(job.rec.detail);
  // Session bookkeeping for dtp_report --serve: the offline accumulator
  // replays exactly what the live one saw (session_stats.h).
  w.key("wait_sec").value(job.rec.wait_sec);
  w.key("run_sec").value(job.rec.run_sec);
  w.key("retries").value(job.rec.retries);
  w.key("preemptions").value(job.rec.preemptions);
  w.key("recovered").value(job.rec.recovered);
  w.key("attempts").value(job.rec.attempts);
  w.end_object();
  journal_.write_line(w.str());
}

void JobManager::recover_from_journal() {
  const std::string path = opts_.artifact_dir + "/journal.jsonl";
  struct Entry {
    JobSpec spec;
    std::string ckpt_file;
    bool terminal = false;
  };
  std::map<uint64_t, Entry> seen;
  std::vector<uint64_t> order;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      JsonValue v;
      try {
        v = JsonParser::parse(line);
      } catch (const std::exception&) {
        continue;  // a torn final line from a crash is expected
      }
      if (!v.is_object()) continue;
      const std::string ev = v.str_or("ev", "");
      const uint64_t id = static_cast<uint64_t>(v.num_or("id", 0));
      if (id == 0) continue;
      if (ev == "accept" && v.has("spec")) {
        try {
          seen[id].spec = JobSpec::from_json(v.at("spec"));
          order.push_back(id);
        } catch (const std::exception&) {
          continue;
        }
      } else if (ev == "ckpt") {
        seen[id].ckpt_file = v.str_or("file", "");
      } else if (ev == "terminal") {
        seen[id].terminal = true;
      }
      // Other kinds ("reject" and future records) are report-only.
    }
  }
  // Compact: the fresh journal re-asserts only the jobs being re-admitted.
  journal_.open(path, /*append=*/false);
  for (uint64_t id : order) {
    const Entry& e = seen.at(id);
    next_id_ = std::max(next_id_, id + 1);
    if (e.terminal) continue;
    auto job = std::make_unique<Job>();
    job->rec.id = id;
    job->rec.spec = e.spec;
    job->rec.state = JobState::Queued;
    job->rec.recovered = true;
    job->rec.detail = "recovered from journal";
    job->enqueue_time = now_sec();
    if (e.spec.deadline_sec > 0.0)
      job->deadline_abs = now_sec() + e.spec.deadline_sec;
    job->seq = next_seq_++;
    if (!e.ckpt_file.empty()) {
      std::string err;
      if (job->ckpt.load_file(opts_.artifact_dir + "/" + e.ckpt_file, &err) &&
          job->ckpt.verify()) {
        DTP_LOG_INFO("serve: job %llu resumes from iter %d",
                     static_cast<unsigned long long>(id), job->ckpt.iter());
      } else {
        job->ckpt.invalidate();  // corrupt checkpoint: restart from scratch
        DTP_LOG_WARN("serve: job %llu checkpoint unusable (%s); restarting",
                     static_cast<unsigned long long>(id), err.c_str());
      }
    }
    journal_accept(*job);
    journal_ckpt(*job);
    queue_.push({id, job->rec.spec.priority, job->rec.spec.client,
                 job->deadline_abs, job->seq},
                /*force=*/true);
    events_.push("recover", id, "queued", "recovered from journal");
    jobs_.emplace(id, std::move(job));
    ++tally_.recovered;
    bump("serve.recovered");
  }
  update_gauges();
}

// ------------------------------------------------------------- scheduling --

std::map<std::string, int> JobManager::running_per_client() const {
  std::map<std::string, int> load;
  for (const auto& [id, job] : jobs_)
    if (job->rec.state == JobState::Running) ++load[job->rec.spec.client];
  return load;
}

void JobManager::maybe_preempt(const Job& incoming) {
  if (!opts_.preemption) return;
  if (running_ < opts_.workers) return;  // an idle worker will pick it up
  Job* victim = nullptr;
  for (const auto& [id, job] : jobs_) {
    if (job->rec.state != JobState::Running) continue;
    if (job->ctl.preempt.load()) continue;  // already being preempted
    if (victim == nullptr ||
        job->rec.spec.priority < victim->rec.spec.priority)
      victim = job.get();
  }
  if (victim != nullptr &&
      victim->rec.spec.priority < incoming.rec.spec.priority) {
    victim->ctl.preempt.store(true);
    victim->ctl.placer.request_pause();
    const std::string why = "preempted by job " +
                            std::to_string(incoming.rec.id) + " (prio " +
                            std::to_string(incoming.rec.spec.priority) + ")";
    spans_.instant("preempt", victim->rec.id, spans_.now_sec(), why);
    events_.push("preempt", victim->rec.id, "running", why);
    bump("serve.preempt_requests");
  }
}

void JobManager::update_gauges() {
  auto& reg = obs::MetricsRegistry::instance();
  int paused = 0;
  for (const auto& [id, job] : jobs_)
    if (job->rec.state == JobState::Paused) ++paused;
  reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  reg.gauge("serve.running").set(static_cast<double>(running_));
  reg.gauge("serve.paused").set(static_cast<double>(paused));
  reg.gauge("serve.draining").set(draining_ ? 1.0 : 0.0);
}

void JobManager::set_state(Job& job, JobState state,
                           const std::string& detail) {
  job.rec.state = state;
  job.rec.detail = detail;
  // Terminal transitions are announced by finalize_terminal() (one event
  // per terminal state, carrying the tallies); lifecycle hops announce here.
  if (!job_state_is_terminal(state))
    events_.push("state", job.rec.id, job_state_name(state), detail);
  update_gauges();
}

SubmitResult JobManager::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++tally_.submitted;
  bump("serve.submitted");
  const uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->rec.id = id;
  job->rec.spec = spec;
  auto reject = [&](const std::string& reason) {
    job->rec.state = JobState::Rejected;
    job->rec.detail = reason;
    events_.push("reject", id, "rejected", reason);
    journal_reject(*job);
    session_.add_terminal("rejected", 0.0, 0.0, 0, 0, false);
    jobs_.emplace(id, std::move(job));
    ++tally_.rejected;
    bump("serve.rejected");
    update_gauges();
    return SubmitResult{false, id, reason};
  };
  const std::string invalid = spec.validate();
  if (!invalid.empty()) return reject("rejected:invalid: " + invalid);
  if (draining_ || stopped_) return reject("rejected:draining");
  if (queue_.full()) return reject("rejected:overload");

  job->rec.state = JobState::Queued;
  job->enqueue_time = now_sec();
  if (spec.deadline_sec > 0.0)
    job->deadline_abs = now_sec() + spec.deadline_sec;
  job->seq = next_seq_++;
  queue_.push({id, spec.priority, spec.client, job->deadline_abs, job->seq});
  journal_accept(*job);
  events_.push("accept", id, "queued",
               spec.client + " " + spec.mode + " prio " +
                   std::to_string(spec.priority));
  Job& ref = *job;
  jobs_.emplace(id, std::move(job));
  ++tally_.accepted;
  bump("serve.accepted");
  update_gauges();
  maybe_preempt(ref);
  cv_work_.notify_one();
  return {true, id, ""};
}

bool JobManager::cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  switch (job.rec.state) {
    case JobState::Queued:
      queue_.remove(id);
      set_state(job, JobState::Cancelled, "cancelled while queued");
      finalize_terminal(job);
      cv_idle_.notify_all();
      return true;
    case JobState::Running:
      job.ctl.placer.request_cancel();  // honoured at the next iteration
      return true;
    case JobState::Paused:
      set_state(job, JobState::Cancelled, "cancelled while paused");
      finalize_terminal(job);
      cv_idle_.notify_all();
      return true;
    default:
      return false;  // already terminal
  }
}

bool JobManager::pause(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.rec.state == JobState::Running) {
    job.ctl.preempt.store(false);
    job.ctl.placer.request_pause();
    return true;
  }
  if (job.rec.state == JobState::Queued) {
    queue_.remove(id);
    set_state(job, JobState::Paused, "paused while queued");
    cv_idle_.notify_all();
    return true;
  }
  return false;
}

bool JobManager::resume(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.rec.state != JobState::Paused) return false;
  job.enqueue_time = now_sec();
  job.seq = next_seq_++;
  queue_.push({id, job.rec.spec.priority, job.rec.spec.client,
               job.deadline_abs, job.seq},
              /*force=*/true);
  // After the push, so the gauge refresh inside sees the new queue depth.
  set_state(job, JobState::Queued, "resumed");
  cv_work_.notify_one();
  return true;
}

// ---------------------------------------------------------------- workers --

void JobManager::finalize_terminal(Job& job) {
  journal_terminal(job);
  events_.push("terminal", job.rec.id, job_state_name(job.rec.state),
               job.rec.detail);
  session_.add_terminal(job_state_name(job.rec.state), job.rec.wait_sec,
                        job.rec.run_sec, job.rec.retries, job.rec.preemptions,
                        job.rec.recovered);
  tally_.retries += static_cast<uint64_t>(job.rec.retries);
  switch (job.rec.state) {
    case JobState::Done: ++tally_.done; bump("serve.done"); break;
    case JobState::Failed: ++tally_.failed; bump("serve.failed"); break;
    case JobState::TimedOut: ++tally_.timeout; bump("serve.timeout"); break;
    case JobState::Cancelled:
      ++tally_.cancelled;
      bump("serve.cancelled");
      break;
    default: break;
  }
  update_gauges();
}

void JobManager::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_work_.wait(lock, [&] {
      return stopped_ || (!draining_ && !queue_.empty());
    });
    if (stopped_) return;
    QueueEntry entry;
    if (!queue_.pick(running_per_client(), &entry)) continue;
    Job& job = *jobs_.at(entry.id);
    set_state(job, JobState::Running, "");
    const double waited = now_sec() - job.enqueue_time;
    job.rec.wait_sec += waited;
    obs::MetricsRegistry::instance()
        .histogram("serve.wait_ms")
        .observe(waited * 1e3);
    const double span_now = spans_.now_sec();
    spans_.span("queue_wait", job.rec.id, span_now - waited, span_now);
    job.ctl.preempt.store(false);
    job.ctl.placer.clear();
    ++running_;
    update_gauges();
    const double t_start = now_sec();
    const double span_run0 = spans_.now_sec();

    // The runner works on a private copy so status()/snapshot() can keep
    // reading the live record under the lock while the job executes; the
    // results merge back atomically once the attempt ends.
    JobRecord scratch = job.rec;
    lock.unlock();
    runner_.run(scratch, job.ctl, job.ckpt);
    lock.lock();
    job.rec = std::move(scratch);

    --running_;
    job.rec.run_sec += now_sec() - t_start;
    spans_.span("run", job.rec.id, span_run0, spans_.now_sec(),
                job_state_name(job.rec.state));
    if (job.rec.state == JobState::Paused) {
      set_state(job, JobState::Paused, job.rec.detail);  // event + gauges
      journal_ckpt(job);  // resumable across a restart
      if (!draining_ && job.ctl.preempt.load()) {
        ++job.rec.preemptions;
        ++tally_.preemptions;
        bump("serve.preemptions");
        job.enqueue_time = now_sec();
        job.seq = next_seq_++;
        queue_.push({job.rec.id, job.rec.spec.priority, job.rec.spec.client,
                     job.deadline_abs, job.seq},
                    /*force=*/true);
        set_state(job, JobState::Queued, "requeued after preemption");
        cv_work_.notify_one();
      }
      // Otherwise parked: client pause (until resume()) or drain (journaled).
    } else {
      obs::MetricsRegistry::instance()
          .histogram("serve.service_ms")
          .observe((now_sec() - t_start) * 1e3);
      finalize_terminal(job);
    }
    update_gauges();
    cv_idle_.notify_all();
  }
}

void JobManager::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_work_.wait_for(
        lock,
        std::chrono::duration<double>(opts_.watchdog_period_sec),
        [&] { return stopped_; });
    if (stopped_) return;
    const double now = now_sec();
    std::vector<uint64_t> expired_queued;
    for (const auto& [id, job] : jobs_) {
      if (job->deadline_abs <= 0.0 || now <= job->deadline_abs) continue;
      if (job->rec.state == JobState::Running &&
          !job->ctl.deadline_exceeded.load()) {
        job->ctl.deadline_exceeded.store(true);
        job->ctl.placer.request_cancel();
        spans_.instant("deadline", id, spans_.now_sec(),
                       "watchdog cancel: deadline exceeded mid-run");
        events_.push("watchdog", id, "running",
                     "deadline exceeded; cancel requested");
        bump("serve.watchdog_fires");
      } else if (job->rec.state == JobState::Queued) {
        expired_queued.push_back(id);
      }
    }
    for (uint64_t id : expired_queued) {
      Job& job = *jobs_.at(id);
      queue_.remove(id);
      events_.push("watchdog", id, "queued", "deadline expired in queue");
      bump("serve.watchdog_fires");
      set_state(job, JobState::TimedOut, "deadline expired in queue");
      finalize_terminal(job);
    }
    if (!expired_queued.empty()) cv_idle_.notify_all();
  }
}

// ------------------------------------------------------------------ query --

std::optional<JobRecord> JobManager::status(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  JobRecord rec = it->second->rec;
  // The runner works on a private copy while an attempt executes, so surface
  // live progress for running jobs from the placer's iteration mirror.
  if (rec.state == JobState::Running) {
    const int live = it->second->ctl.placer.current_iter.load();
    if (live >= 0) rec.outcome.iterations = live;
  }
  return rec;
}

std::vector<JobRecord> JobManager::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->rec);
  return out;
}

ManagerStats JobManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ManagerStats s = tally_;
  s.queue_depth = queue_.size();
  s.running = running_;
  s.draining = draining_;
  return s;
}

std::string JobManager::stats_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("queue_depth").value(static_cast<uint64_t>(queue_.size()));
  w.key("running").value(running_);
  w.key("workers").value(opts_.workers);
  w.key("queue_capacity").value(static_cast<uint64_t>(opts_.queue_capacity));
  w.key("submitted").value(tally_.submitted);
  w.key("accepted").value(tally_.accepted);
  w.key("rejected").value(tally_.rejected);
  w.key("done").value(tally_.done);
  w.key("failed").value(tally_.failed);
  w.key("timeout").value(tally_.timeout);
  w.key("cancelled").value(tally_.cancelled);
  w.key("retries").value(tally_.retries);
  w.key("preemptions").value(tally_.preemptions);
  w.key("recovered").value(tally_.recovered);
  w.key("draining").value(draining_);
  w.key("events_seq").value(events_.last_seq());
  w.key("session");
  session_.to_json(w);
  w.end_object();
  return w.str();
}

std::string JobManager::profile_json(double window_sec) const {
  if (profiler_ == nullptr) return "";
  return profiler_->summary_json(window_sec);
}

std::string JobManager::profile_collapsed() const {
  if (profiler_ == nullptr) return "";
  return profiler_->collapsed();
}

std::string JobManager::prometheus() const {
  std::string out = obs::MetricsRegistry::instance().to_prometheus("dtp_");
  // Live job-state distribution as a labeled series (always all states, so
  // scrapers see explicit zeros instead of gaps).
  uint64_t counts[8] = {};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, job] : jobs_)
      ++counts[static_cast<size_t>(job->rec.state)];
  }
  out += "# HELP dtp_serve_job_state Jobs currently in each lifecycle state\n";
  out += "# TYPE dtp_serve_job_state gauge\n";
  for (int s = 0; s < 8; ++s) {
    out += "dtp_serve_job_state{state=\"";
    out += job_state_name(static_cast<JobState>(s));
    out += "\"} " + std::to_string(counts[s]) + "\n";
  }
  out += "# HELP dtp_serve_up Daemon liveness (1 until drained)\n";
  out += "# TYPE dtp_serve_up gauge\n";
  out += std::string("dtp_serve_up ") + (draining() ? "0" : "1") + "\n";
  return out;
}

bool JobManager::wait_idle(double timeout_sec) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_idle_.wait_for(
      lock, std::chrono::duration<double>(timeout_sec),
      [&] { return queue_.empty() && running_ == 0; });
}

bool JobManager::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void JobManager::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopped_) return;
  draining_ = true;
  events_.push("drain", 0, "", "drain requested");
  update_gauges();
  for (const auto& [id, job] : jobs_) {
    if (job->rec.state == JobState::Running) {
      job->ctl.preempt.store(false);  // drain parks, it does not requeue
      job->ctl.placer.request_pause();
    }
  }
  cv_work_.notify_all();
  cv_idle_.wait(lock, [&] { return running_ == 0; });
  stopped_ = true;
  cv_work_.notify_all();
  lock.unlock();
  for (std::thread& t : workers_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
  workers_.clear();
  // Join the sampler thread after the workers: the final profile then covers
  // every span the daemon ever ran, and SIGTERM-driven drains leave no
  // background thread behind.
  if (profiler_ != nullptr) profiler_->stop();
  if (!opts_.trace_out.empty()) {
    if (!write_trace(opts_.trace_out))
      DTP_LOG_WARN("serve: cannot write trace to %s", opts_.trace_out.c_str());
  }
}

}  // namespace dtp::serve
