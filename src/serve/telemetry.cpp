#include "serve/telemetry.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "common/json_writer.h"
#include "common/wallclock.h"

namespace dtp::serve {

// -------------------------------------------------------------- EventRing --

EventRing::EventRing(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.resize(capacity_);
}

uint64_t EventRing::push(const std::string& kind, uint64_t job,
                         const std::string& state, const std::string& detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t seq = next_seq_++;
  ServeEvent& slot = ring_[seq % capacity_];
  slot.seq = seq;
  slot.ts_ms = wall_time_ms();
  slot.kind = kind;
  slot.job = job;
  slot.state = state;
  slot.detail = detail;
  return seq;
}

std::vector<ServeEvent> EventRing::since(uint64_t since_seq,
                                         uint64_t* next_since,
                                         uint64_t* gap) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t last = next_seq_ - 1;
  // Oldest seq still held: the ring keeps the most recent capacity_ events.
  const uint64_t oldest = last >= capacity_ ? last - capacity_ + 1 : 1;
  uint64_t from = since_seq + 1;
  uint64_t lost = 0;
  if (from < oldest) {
    lost = oldest - from;  // overflowed past the cursor
    from = oldest;
  }
  std::vector<ServeEvent> out;
  for (uint64_t s = from; s <= last; ++s) out.push_back(ring_[s % capacity_]);
  if (next_since != nullptr) *next_since = last >= since_seq ? last : since_seq;
  if (gap != nullptr) *gap = lost;
  return out;
}

uint64_t EventRing::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

// ---------------------------------------------------------------- SpanLog --

SpanLog::SpanLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()),
      epoch_wall_ms_(wall_time_ms()) {}

double SpanLog::now_sec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void SpanLog::record(JobSpan s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= capacity_) {
    ++dropped_;  // keep the session's beginning; a trace cut short still
    return;      // explains where the time went
  }
  spans_.push_back(std::move(s));
}

void SpanLog::span(const std::string& name, uint64_t track, double t0_sec,
                   double t1_sec, const std::string& detail) {
  record({name, track, t0_sec, std::max(0.0, t1_sec - t0_sec), false, detail});
}

void SpanLog::instant(const std::string& name, uint64_t track, double t_sec,
                      const std::string& detail) {
  record({name, track, t_sec, 0.0, true, detail});
}

size_t SpanLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

size_t SpanLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<JobSpan> SpanLog::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t SpanLog::num_tracks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<uint64_t> tracks;
  for (const JobSpan& s : spans_) tracks.insert(s.track);
  return tracks.size();
}

std::string SpanLog::to_chrome_json() const {
  std::vector<JobSpan> snap = spans();
  std::sort(snap.begin(), snap.end(),
            [](const JobSpan& a, const JobSpan& b) {
              return a.ts_sec < b.ts_sec;
            });
  std::set<uint64_t> tracks;
  for (const JobSpan& s : snap) tracks.insert(s.track);

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData").begin_object();
  w.key("epoch_wall_ms").value(epoch_wall_ms());
  w.key("dropped_spans").value(static_cast<uint64_t>(dropped()));
  w.end_object();
  w.key("traceEvents").begin_array();
  // Track naming metadata first: the daemon process and one named row per
  // job, so the flame view reads "job-7" instead of a bare tid.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(1);
  w.key("tid").value(0);
  w.key("args").begin_object().key("name").value("dtp_serve").end_object();
  w.end_object();
  for (uint64_t t : tracks) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(t);
    w.key("args").begin_object();
    w.key("name").value(t == 0 ? std::string("daemon")
                               : "job-" + std::to_string(t));
    w.end_object();
    w.end_object();
  }
  for (const JobSpan& s : snap) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("ph").value(s.instant ? "i" : "X");
    w.key("pid").value(1);
    w.key("tid").value(s.track);
    w.key("ts").value(s.ts_sec * 1e6);
    if (s.instant) {
      w.key("s").value("t");  // instant scoped to its thread/track
    } else {
      w.key("dur").value(s.dur_sec * 1e6);
    }
    if (!s.detail.empty()) {
      w.key("args").begin_object();
      w.key("detail").value(s.detail);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool SpanLog::write_json(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_json() << "\n";
  return static_cast<bool>(f);
}

}  // namespace dtp::serve
