// Daemon-session accumulator shared by the live manager and the offline
// journal report (DESIGN.md §13).
//
// One accumulator, two feeders: JobManager::finalize_terminal() feeds it as
// jobs end (so {"cmd":"stats"} and dtp_top show live wait/service
// percentiles), and `dtp_report --serve journal.jsonl` replays the journal's
// terminal records through the exact same code — the live and post-hoc views
// of a session cannot drift because they are the same arithmetic.
//
// Header-only on purpose: dtp_report links only dtp_common/dtp_prof and must
// not pull the placer stack in through dtp_serve_lib.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "common/json_writer.h"
#include "common/p2_quantile.h"

namespace dtp::serve {

class SessionAccum {
 public:
  // One terminal record: the job's final state name ("done", "failed",
  // "timeout", "cancelled" — or "rejected" for shed submissions, which carry
  // no wait/service sample).
  void add_terminal(const std::string& state, double wait_sec, double run_sec,
                    int retries, int preemptions, bool recovered) {
    ++by_state_[state];
    if (state == "rejected") return;
    ++terminals_;
    retries_ += static_cast<uint64_t>(retries > 0 ? retries : 0);
    preemptions_ += static_cast<uint64_t>(preemptions > 0 ? preemptions : 0);
    if (recovered) ++recovered_;
    wait_sum_sec_ += wait_sec;
    run_sum_sec_ += run_sec;
    wait_p50_.observe(wait_sec * 1e3);
    wait_p95_.observe(wait_sec * 1e3);
    service_p50_.observe(run_sec * 1e3);
    service_p95_.observe(run_sec * 1e3);
  }

  uint64_t terminals() const { return terminals_; }
  uint64_t count(const std::string& state) const {
    const auto it = by_state_.find(state);
    return it == by_state_.end() ? 0 : it->second;
  }
  uint64_t retries() const { return retries_; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t recovered() const { return recovered_; }
  double wait_p50_ms() const { return wait_p50_.value(); }
  double wait_p95_ms() const { return wait_p95_.value(); }
  double service_p50_ms() const { return service_p50_.value(); }
  double service_p95_ms() const { return service_p95_.value(); }

  // {"jobs":{state:n,...},"wait_ms":{p50,p95,sum_sec},...} — spliced into
  // stats_json() by the manager and printed by dtp_report --serve.
  void to_json(JsonWriter& w) const {
    w.begin_object();
    w.key("jobs").begin_object();
    for (const auto& [state, n] : by_state_) w.key(state).value(n);
    w.end_object();
    w.key("wait_ms").begin_object();
    w.key("p50").value(wait_p50_ms());
    w.key("p95").value(wait_p95_ms());
    w.key("sum_sec").value(wait_sum_sec_);
    w.end_object();
    w.key("service_ms").begin_object();
    w.key("p50").value(service_p50_ms());
    w.key("p95").value(service_p95_ms());
    w.key("sum_sec").value(run_sum_sec_);
    w.end_object();
    w.key("retries").value(retries_);
    w.key("preemptions").value(preemptions_);
    w.key("recovered").value(recovered_);
    w.end_object();
  }

  void print(std::FILE* f) const {
    std::fprintf(f, "jobs by terminal state:");
    for (const auto& [state, n] : by_state_)
      std::fprintf(f, "  %s=%llu", state.c_str(),
                   static_cast<unsigned long long>(n));
    std::fprintf(f, "\n");
    std::fprintf(f,
                 "wait    p50 %8.1f ms  p95 %8.1f ms  (total %.2fs)\n"
                 "service p50 %8.1f ms  p95 %8.1f ms  (total %.2fs)\n",
                 wait_p50_ms(), wait_p95_ms(), wait_sum_sec_, service_p50_ms(),
                 service_p95_ms(), run_sum_sec_);
    std::fprintf(f, "retries %llu  preemptions %llu  recovered %llu\n",
                 static_cast<unsigned long long>(retries_),
                 static_cast<unsigned long long>(preemptions_),
                 static_cast<unsigned long long>(recovered_));
  }

 private:
  std::map<std::string, uint64_t> by_state_;
  uint64_t terminals_ = 0;
  uint64_t retries_ = 0;
  uint64_t preemptions_ = 0;
  uint64_t recovered_ = 0;
  double wait_sum_sec_ = 0.0;
  double run_sum_sec_ = 0.0;
  P2Quantile wait_p50_{0.50};
  P2Quantile wait_p95_{0.95};
  P2Quantile service_p50_{0.50};
  P2Quantile service_p95_{0.95};
};

}  // namespace dtp::serve
