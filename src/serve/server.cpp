#include "serve/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <vector>

#include "serve/protocol.h"

namespace dtp::serve {

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* err) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (err != nullptr) *err = "socket path too long: " + path;
    return false;
  }
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

// Writes the whole buffer, riding out EINTR/short writes.
bool write_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::~SocketServer() { close_all(); }

bool SocketServer::listen_on(const std::string& path, std::string* err) {
  sockaddr_un addr;
  if (!fill_addr(path, &addr, err)) return false;
  ::unlink(path.c_str());  // a stale socket from a crashed daemon
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (err != nullptr) *err = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    if (err != nullptr)
      *err = std::string("bind/listen ") + path + ": " + strerror(errno);
    close_all();
    return false;
  }
  path_ = path;
  return true;
}

size_t SocketServer::serve(const std::atomic<bool>& stop) {
  size_t handled = 0;
  std::map<int, std::string> buffers;  // connection fd -> partial input
  bool drain = false;
  while (!stop.load(std::memory_order_acquire) && !drain &&
         listen_fd_ >= 0) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buf] : buffers) fds.push_back({fd, POLLIN, 0});
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the stop flag
      break;
    }
    if (rc == 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0) break;
        buffers.emplace(cfd, std::string());
        break;  // accept one per poll round; the loop is hot enough
      }
    }
    std::vector<int> closed;
    for (size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int fd = fds[i].fd;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        closed.push_back(fd);
        continue;
      }
      std::string& buf = buffers[fd];
      buf.append(chunk, static_cast<size_t>(n));
      // A client flooding without newlines is shed, not buffered forever.
      if (buf.size() > (1u << 20)) {
        closed.push_back(fd);
        continue;
      }
      size_t start = 0;
      for (;;) {
        const size_t nl = buf.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        bool drain_req = false;
        const std::string resp = handle_request(*manager_, line, &drain_req);
        ++handled;
        if (!write_all(fd, resp + "\n")) closed.push_back(fd);
        if (drain_req) drain = true;
      }
      buf.erase(0, start);
    }
    for (int fd : closed) {
      ::close(fd);
      buffers.erase(fd);
    }
  }
  for (const auto& [fd, buf] : buffers) ::close(fd);
  return handled;
}

void SocketServer::close_all() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

bool send_request(const std::string& socket_path, const std::string& line,
                  std::string* response, std::string* err) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr, err)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (err != nullptr)
      *err = std::string("connect ") + socket_path + ": " + strerror(errno);
    ::close(fd);
    return false;
  }
  if (!write_all(fd, line + "\n")) {
    if (err != nullptr) *err = std::string("write: ") + strerror(errno);
    ::close(fd);
    return false;
  }
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    const size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      buf.resize(nl);
      break;
    }
  }
  ::close(fd);
  if (buf.empty()) {
    if (err != nullptr) *err = "no response";
    return false;
  }
  if (response != nullptr) *response = buf;
  return true;
}

}  // namespace dtp::serve
