// Placement-as-a-service job manager (DESIGN.md §12).
//
// Owns the admission queue, M worker threads that execute jobs through the
// JobRunner containment harness, a deadline watchdog, and the crash-safety
// journal.  The socket server and the tests drive it through the same
// thread-safe API, so the soak test exercises the real scheduler in-process
// with no sockets involved.
//
// Guarantees:
//   * Admission control — a submit against a full queue (or a draining
//     manager) is Rejected immediately, never silently dropped.
//   * Every accepted job reaches exactly one terminal state: done, failed,
//     timeout or cancelled.  Preemption and drain park jobs with a sealed
//     checkpoint; they either resume in-process or are journaled for the
//     next process to finish.
//   * Preemption — a higher-priority submit pauses the lowest-priority
//     running job (checkpoint + requeue) when no worker is idle.
//   * Graceful drain — drain() stops admission, checkpoints in-flight jobs,
//     journals the queue and joins all threads; a subsequent construction
//     over the same artifact directory re-admits every unfinished job and
//     resumes from its checkpoint.
//
// Journal format (<artifacts>/journal.jsonl, one JSON object per line, every
// record stamped with wall-clock "ts_ms" + monotonic "seq" — see
// common/wallclock.h — so journals, event rings and traces merge on one
// timeline):
//   {"ev":"accept","id":N,"spec":{...}}     job admitted
//   {"ev":"reject","id":N,"reason":R}       submission shed (report-only)
//   {"ev":"ckpt","id":N,"iter":I,"file":F}  resumable checkpoint on disk
//   {"ev":"terminal","id":N,"state":S,      job finished; wait/run/retry
//    "wait_sec":..,"run_sec":..,...}        fields feed dtp_report --serve
// Recovery replays the journal: accepted jobs without a terminal event are
// re-admitted (resuming from their checkpoint file when it verifies) and the
// journal is compacted.  Unknown "ev" kinds are skipped by recovery.
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonl.h"
#include "obs/prof/sampling_profiler.h"
#include "robust/checkpoint.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "serve/runner.h"
#include "serve/session_stats.h"
#include "serve/telemetry.h"

namespace dtp::serve {

struct ManagerOptions {
  int workers = 2;
  size_t queue_capacity = 8;
  std::string artifact_dir;  // journal + per-job streams; "" = in-memory only
  int backoff_base_ms = 50;
  double watchdog_period_sec = 0.02;
  bool preemption = true;
  size_t event_capacity = 256;   // telemetry event ring (DESIGN.md §13)
  size_t span_capacity = 1 << 16;  // cross-job span log
  std::string trace_out;  // merged Chrome trace written on drain; "" = off
  // Daemon-wide sampling profiler (DESIGN.md §14): hot-spot attribution
  // across all jobs, queried live via {"cmd":"profile"}.  0 disables it.
  double profile_hz = 997.0;
};

struct SubmitResult {
  bool accepted = false;
  uint64_t id = 0;        // assigned even for rejected jobs (status queries)
  std::string reason;     // rejection reason ("" when accepted)
};

struct ManagerStats {
  size_t queue_depth = 0;
  int running = 0;
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t done = 0;
  uint64_t failed = 0;
  uint64_t timeout = 0;
  uint64_t cancelled = 0;
  uint64_t retries = 0;
  uint64_t preemptions = 0;
  uint64_t recovered = 0;
  bool draining = false;
};

class JobManager {
 public:
  explicit JobManager(ManagerOptions opts);
  ~JobManager();  // drains if the caller has not

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  SubmitResult submit(const JobSpec& spec);
  // Cancel works in any non-terminal state (queued, running, paused).
  bool cancel(uint64_t id);
  // Pause a running job (checkpoint + park); resume re-queues a parked job.
  bool pause(uint64_t id);
  bool resume(uint64_t id);

  std::optional<JobRecord> status(uint64_t id) const;
  std::vector<JobRecord> snapshot() const;
  ManagerStats stats() const;
  std::string stats_json() const;

  // Prometheus text exposition: every registry metric (dtp_ prefix) plus the
  // dtp_serve_job_state{state=...} labeled series computed from the live job
  // table.  Scrape via {"cmd":"metrics"} or `dtp_serve --scrape`.
  std::string prometheus() const;

  // Live hot-spot attribution ({"cmd":"profile"}): dtp.profile.v1 summary of
  // the daemon-wide sampling profiler.  window_sec > 0 restricts it to
  // roughly the last window_sec seconds (checkpoint granularity).
  bool profiling() const { return profiler_ != nullptr; }
  std::string profile_json(double window_sec = 0.0) const;
  std::string profile_collapsed() const;

  // Incremental event tail for {"cmd":"events","since":SEQ}; see
  // serve/telemetry.h for the cursor/gap semantics.
  std::vector<ServeEvent> events_since(uint64_t since_seq, uint64_t* next,
                                       uint64_t* gap) const {
    return events_.since(since_seq, next, gap);
  }
  const EventRing& events() const { return events_; }
  const SpanLog& spans() const { return spans_; }

  // Merged daemon-lifetime Chrome trace (one track per job).  drain() calls
  // this automatically when opts.trace_out is set.
  bool write_trace(const std::string& path) const {
    return spans_.write_json(path);
  }

  // Blocks until no job is queued or running (paused jobs park), or the
  // timeout expires.  Returns true when idle.
  bool wait_idle(double timeout_sec);

  // Graceful shutdown: reject new work, pause running jobs to checkpoints,
  // journal everything unfinished, join all threads.  Idempotent.
  void drain();
  bool draining() const;

 private:
  struct Job {
    JobRecord rec;
    JobCtl ctl;
    robust::Checkpoint ckpt;
    double enqueue_time = 0.0;  // manager-clock seconds, for wait_sec
    double deadline_abs = 0.0;  // 0 = none
    uint64_t seq = 0;
  };

  void worker_loop();
  void watchdog_loop();
  double now_sec() const;
  // All journal_*, set_state and finalize_* helpers expect mutex_ held.
  void journal_accept(const Job& job);
  void journal_reject(const Job& job);
  void journal_ckpt(Job& job);
  void journal_terminal(const Job& job);
  // The single state-transition choke point: updates the record, pushes the
  // matching event-ring record, and refreshes every gauge — so scrapes
  // between submits always see current queue_depth/running/paused.
  void set_state(Job& job, JobState state, const std::string& detail);
  void finalize_terminal(Job& job);
  void recover_from_journal();
  std::map<std::string, int> running_per_client() const;
  void maybe_preempt(const Job& incoming);
  void update_gauges();

  ManagerOptions opts_;
  LibraryCache libs_;
  EventRing events_;
  SpanLog spans_;
  JobRunner runner_;
  // Daemon-wide sampling profiler; started in the constructor, stopped in
  // drain().  Null when opts.profile_hz == 0.
  std::unique_ptr<obs::prof::SamplingProfiler> profiler_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_idle_;   // a job left Running / queue drained
  std::map<uint64_t, std::unique_ptr<Job>> jobs_;
  JobQueue queue_;
  obs::JsonlWriter journal_;
  uint64_t next_id_ = 1;
  uint64_t next_seq_ = 1;
  int running_ = 0;
  bool draining_ = false;
  bool stopped_ = false;  // workers must exit
  ManagerStats tally_;
  SessionAccum session_;  // same accumulator dtp_report --serve replays

  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace dtp::serve
