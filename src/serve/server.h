// AF_UNIX stream server for the placement service (DESIGN.md §12).
//
// A single poll() loop multiplexes the listen socket and every connected
// client; requests are newline-delimited JSON handled by handle_request().
// Protocol work is cheap (submit is an enqueue), so one thread serves all
// clients; placement itself happens on the JobManager's workers.
//
// The loop exits on: stop flag (the daemon's SIGTERM/SIGINT handler), or a
// client drain request.  Either way the caller still owns the graceful
// drain of the JobManager.
#pragma once

#include <atomic>
#include <string>

namespace dtp::serve {

class JobManager;

class SocketServer {
 public:
  explicit SocketServer(JobManager& manager) : manager_(&manager) {}
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens; removes a stale socket file first.  False + *err on
  // failure.
  bool listen_on(const std::string& path, std::string* err);

  // Serves until `stop` becomes true or a drain request arrives.  Returns
  // the number of requests handled.
  size_t serve(const std::atomic<bool>& stop);

  void close_all();

 private:
  JobManager* manager_;
  std::string path_;
  int listen_fd_ = -1;
};

// One-shot client: connect, send one request line, read one response line.
// False + *err on any transport failure.
bool send_request(const std::string& socket_path, const std::string& line,
                  std::string* response, std::string* err);

}  // namespace dtp::serve
