#include "serve/protocol.h"

#include "common/json_parse.h"
#include "common/json_writer.h"
#include "serve/manager.h"

namespace dtp::serve {

namespace {

std::string error_response(const std::string& what) {
  JsonWriter w;
  w.begin_object();
  w.key("ok").value(false);
  w.key("error").value(what);
  w.end_object();
  return w.str();
}

std::string ack_response() {
  JsonWriter w;
  w.begin_object();
  w.key("ok").value(true);
  w.end_object();
  return w.str();
}

}  // namespace

std::string handle_request(JobManager& manager, const std::string& line,
                           bool* drain_requested) {
  if (drain_requested != nullptr) *drain_requested = false;
  JsonValue req;
  try {
    req = JsonParser::parse(line);
  } catch (const std::exception& e) {
    return error_response(std::string("bad request: ") + e.what());
  }
  if (!req.is_object()) return error_response("bad request: not an object");
  const std::string cmd = req.str_or("cmd", "");

  try {
    if (cmd == "ping") {
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("pong").value(true);
      w.end_object();
      return w.str();
    }
    if (cmd == "submit") {
      if (!req.has("spec")) return error_response("submit needs a spec");
      JobSpec spec;
      try {
        spec = JobSpec::from_json(req.at("spec"));
      } catch (const std::exception& e) {
        return error_response(std::string("bad spec: ") + e.what());
      }
      const SubmitResult r = manager.submit(spec);
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(r.accepted);
      w.key("id").value(r.id);
      if (!r.accepted) w.key("error").value(r.reason);
      w.end_object();
      return w.str();
    }
    if (cmd == "status" || cmd == "cancel" || cmd == "pause" ||
        cmd == "resume") {
      if (!req.has("id") || !req.at("id").is_number())
        return error_response(cmd + " needs an id");
      const uint64_t id = static_cast<uint64_t>(req.num("id"));
      if (cmd == "status") {
        const auto rec = manager.status(id);
        if (!rec) return error_response("unknown job");
        JsonWriter w;
        w.begin_object();
        w.key("ok").value(true);
        w.key("job");
        rec->to_json(w);
        w.end_object();
        return w.str();
      }
      const bool ok = cmd == "cancel"   ? manager.cancel(id)
                      : cmd == "pause"  ? manager.pause(id)
                                        : manager.resume(id);
      return ok ? ack_response()
                : error_response(cmd + " not applicable to job state");
    }
    if (cmd == "list") {
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("jobs").begin_array();
      for (const JobRecord& rec : manager.snapshot()) rec.to_json(w);
      w.end_array();
      w.end_object();
      return w.str();
    }
    if (cmd == "stats") {
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("stats").raw(manager.stats_json());
      w.end_object();
      return w.str();
    }
    if (cmd == "metrics") {
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("format").value("prometheus");
      w.key("text").value(manager.prometheus());
      w.end_object();
      return w.str();
    }
    if (cmd == "profile") {
      if (!manager.profiling())
        return error_response("profile: profiler disabled (--profile-hz 0)");
      double window = 0.0;
      if (req.has("window_sec")) {
        if (!req.at("window_sec").is_number() || req.num("window_sec") < 0)
          return error_response(
              "profile: window_sec must be a non-negative number");
        window = req.num("window_sec");
      }
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("profile").raw(manager.profile_json(window));
      w.end_object();
      return w.str();
    }
    if (cmd == "events") {
      uint64_t since = 0;
      if (req.has("since")) {
        if (!req.at("since").is_number() || req.num("since") < 0)
          return error_response("events: since must be a non-negative number");
        since = static_cast<uint64_t>(req.num("since"));
      }
      uint64_t next = 0, gap = 0;
      const std::vector<ServeEvent> evs =
          manager.events_since(since, &next, &gap);
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("events").begin_array();
      for (const ServeEvent& e : evs) {
        w.begin_object();
        w.key("seq").value(e.seq);
        w.key("ts_ms").value(e.ts_ms);
        w.key("kind").value(e.kind);
        if (e.job != 0) w.key("job").value(e.job);
        if (!e.state.empty()) w.key("state").value(e.state);
        if (!e.detail.empty()) w.key("detail").value(e.detail);
        w.end_object();
      }
      w.end_array();
      w.key("next_since").value(next);
      w.key("gap").value(gap);
      w.end_object();
      return w.str();
    }
    if (cmd == "drain") {
      if (drain_requested != nullptr) *drain_requested = true;
      JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("draining").value(true);
      w.end_object();
      return w.str();
    }
  } catch (const std::exception& e) {
    // Containment of last resort: a bug below must answer, not kill the
    // connection (let alone the daemon).
    return error_response(std::string("internal: ") + e.what());
  }
  return error_response("unknown cmd: " + cmd);
}

}  // namespace dtp::serve
