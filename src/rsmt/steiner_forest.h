// Arena-of-trees storage for every timing net's Steiner tree (DESIGN.md §10).
//
// The seed implementation kept a `vector<SteinerTree>` — one pair of heap
// vectors (nodes, topo order) per net, reallocated on every rebuild and
// copied through a temporary pin-position vector on every drag.  The forest
// replaces that with two flat arenas (node records and topo entries) plus a
// per-net offset table: one allocation at construction, zero allocations at
// steady state, and cache-friendly sequential layout when the per-net Elmore
// kernels sweep net after net.
//
// Offsets are computed once from a fixed per-net node *capacity* (the net's
// degree plus the worst-case number of 1-Steiner insertions the builder can
// make), so a rebuild that changes a tree's Steiner count never moves its
// neighbours: trees are rebuilt and dragged strictly in place.  `assign`
// checks the capacity invariant.
//
// Trees are addressed by NetId; nets that carry no tree (clock nets,
// dangling nets) have zero capacity and an empty view.
#pragma once

#include <vector>

#include "rsmt/steiner_tree.h"

namespace dtp::rsmt {

class SteinerForest {
 public:
  SteinerForest() = default;

  // Two-phase construction: declare every net's capacity, then finalize to
  // allocate the arenas.  `net` indices must be < num_nets.
  explicit SteinerForest(size_t num_nets)
      : capacity_(num_nets, 0), count_(num_nets, 0), num_pins_(num_nets, 0),
        root_(num_nets, 0) {}
  void set_capacity(int net, int node_capacity) {
    capacity_[static_cast<size_t>(net)] = node_capacity;
  }
  void finalize();

  size_t num_nets() const { return capacity_.size(); }
  size_t total_capacity() const { return nodes_.size(); }
  int node_offset(int net) const { return offset_[static_cast<size_t>(net)]; }
  int node_capacity(int net) const { return capacity_[static_cast<size_t>(net)]; }
  int num_nodes(int net) const { return count_[static_cast<size_t>(net)]; }
  bool has_tree(int net) const { return count_[static_cast<size_t>(net)] > 0; }

  // Copies an owning tree (from the RSMT builder) into the net's arena slot.
  // Aborts if the tree exceeds the slot's capacity.
  void assign(int net, const SteinerTree& tree);

  // Mutable view of one net's tree; empty view when the net has no tree.
  SteinerTreeView tree(int net) {
    const size_t n = static_cast<size_t>(net);
    const size_t off = static_cast<size_t>(offset_[n]);
    const size_t cnt = static_cast<size_t>(count_[n]);
    return {num_pins_[n], root_[n],
            std::span<SteinerNode>(nodes_.data() + off, cnt),
            std::span<const int>(topo_.data() + off, cnt)};
  }
  SteinerTreeView tree(int net) const {
    // Views are inherently mutable (the drag path writes positions); const
    // access shares the implementation.
    return const_cast<SteinerForest*>(this)->tree(net);
  }

 private:
  std::vector<int> capacity_;  // per net: arena slot size
  std::vector<int> count_;     // per net: nodes currently stored
  std::vector<int> num_pins_;
  std::vector<int> root_;
  std::vector<int> offset_;    // per net: arena start (size num_nets + 1)
  std::vector<SteinerNode> nodes_;
  std::vector<int> topo_;      // per-net topo orders, same offsets as nodes_
};

}  // namespace dtp::rsmt
