// Rectilinear Steiner tree construction (FLUTE substitute; DESIGN.md §1).
//
//   * degree 2: a single edge;
//   * degree 3: the exact RSMT — one Steiner point at the coordinate-wise
//     median of the three pins;
//   * degree 4..kr_max_pins: Prim rectilinear MST followed by iterated
//     1-Steiner refinement (Kahng–Robins): repeatedly insert the Hanan-grid
//     point that maximally reduces the MST length, until no candidate helps;
//   * larger nets: plain rectilinear MST (refinement cost grows ~n^4).
//
// All builders produce trees satisfying the coordinate-provenance contract of
// SteinerTree, rooted at the net driver.
#pragma once

#include <span>

#include "rsmt/steiner_tree.h"

namespace dtp::rsmt {

struct RsmtOptions {
  bool enable_1steiner = true;  // turn off to get plain RMST (ablation)
  int kr_max_pins = 16;         // 1-Steiner refinement only below this degree
  int kr_max_rounds = 12;       // safety cap on insertion rounds
  double kr_min_gain = 1e-9;    // stop when the best candidate gains less
};

// Builds a tree over `pins` rooted at pins[driver].
SteinerTree build_rsmt(std::span<const Vec2> pins, int driver,
                       const RsmtOptions& opts = {});

// Plain rectilinear MST over the pins (no Steiner points), rooted at driver.
// Exposed for the RSMT-quality ablation bench.
SteinerTree build_rmst(std::span<const Vec2> pins, int driver);

}  // namespace dtp::rsmt
