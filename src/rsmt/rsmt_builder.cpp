#include "rsmt/rsmt_builder.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"
#include "obs/metrics.h"

namespace dtp::rsmt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Prim's algorithm over a complete rectilinear graph, O(m^2).
// Returns the parent array of an MST rooted at `root` (parent[root] == -1).
std::vector<int> prim_parents(std::span<const Vec2> pts, int root) {
  const size_t m = pts.size();
  std::vector<int> parent(m, -1);
  std::vector<double> dist(m, kInf);
  std::vector<char> in_tree(m, 0);
  dist[static_cast<size_t>(root)] = 0.0;
  for (size_t iter = 0; iter < m; ++iter) {
    size_t best = m;
    double best_d = kInf;
    for (size_t v = 0; v < m; ++v)
      if (!in_tree[v] && dist[v] < best_d) {
        best = v;
        best_d = dist[v];
      }
    DTP_ASSERT(best < m);
    in_tree[best] = 1;
    for (size_t v = 0; v < m; ++v) {
      if (in_tree[v]) continue;
      const double d = manhattan(pts[best], pts[v]);
      if (d < dist[v]) {
        dist[v] = d;
        parent[v] = static_cast<int>(best);
      }
    }
  }
  return parent;
}

double mst_length(std::span<const Vec2> pts) {
  if (pts.size() < 2) return 0.0;
  const auto parent = prim_parents(pts, 0);
  double total = 0.0;
  for (size_t v = 1; v < pts.size(); ++v)
    total += manhattan(pts[v], pts[static_cast<size_t>(parent[v])]);
  return total;
}

// Finalizes a tree: given all node positions (pins first), Steiner provenance,
// and an undirected MST parent array, re-roots at the driver and computes the
// parent-before-child order.
SteinerTree finalize(std::span<const Vec2> pts, int num_pins, int driver,
                     const std::vector<std::pair<int, int>>& steiner_src) {
  const size_t m = pts.size();
  const auto up = prim_parents(pts, driver);

  SteinerTree tree;
  tree.num_pins = num_pins;
  tree.root = driver;
  tree.nodes.resize(m);
  for (size_t v = 0; v < m; ++v) {
    tree.nodes[v].pos = pts[v];
    tree.nodes[v].parent = up[v];
    if (v < static_cast<size_t>(num_pins)) {
      tree.nodes[v].x_src = static_cast<int>(v);
      tree.nodes[v].y_src = static_cast<int>(v);
    } else {
      tree.nodes[v].x_src = steiner_src[v - static_cast<size_t>(num_pins)].first;
      tree.nodes[v].y_src = steiner_src[v - static_cast<size_t>(num_pins)].second;
    }
  }
  // Prim rooted at `driver` already yields parent pointers oriented away from
  // the root, so the topo order is just a BFS by child lists.
  std::vector<std::vector<int>> children(m);
  for (size_t v = 0; v < m; ++v)
    if (up[v] >= 0) children[static_cast<size_t>(up[v])].push_back(static_cast<int>(v));
  tree.topo_order.reserve(m);
  tree.topo_order.push_back(driver);
  for (size_t head = 0; head < tree.topo_order.size(); ++head) {
    for (int c : children[static_cast<size_t>(tree.topo_order[head])])
      tree.topo_order.push_back(c);
  }
  DTP_ASSERT(tree.topo_order.size() == m);
  return tree;
}

// Exact 3-pin RSMT: one Steiner point at the coordinate-wise median.
SteinerTree build_median3(std::span<const Vec2> pins, int driver) {
  // Median index per axis (the pin supplying the middle coordinate).
  auto median_idx = [&](auto coord) {
    int idx[3] = {0, 1, 2};
    std::sort(idx, idx + 3, [&](int a, int b) {
      return coord(pins[static_cast<size_t>(a)]) < coord(pins[static_cast<size_t>(b)]);
    });
    return idx[1];
  };
  const int mx = median_idx([](const Vec2& p) { return p.x; });
  const int my = median_idx([](const Vec2& p) { return p.y; });
  const Vec2 s{pins[static_cast<size_t>(mx)].x, pins[static_cast<size_t>(my)].y};

  std::vector<Vec2> pts(pins.begin(), pins.end());
  // If the median point coincides with a pin, the MST through the pins already
  // realizes the RSMT; no Steiner node needed.
  std::vector<std::pair<int, int>> src;
  bool coincides = false;
  for (const Vec2& p : pins)
    if (p == s) coincides = true;
  if (!coincides) {
    pts.push_back(s);
    src.emplace_back(mx, my);
  }
  return finalize(pts, 3, driver, src);
}

}  // namespace

SteinerTree build_rmst(std::span<const Vec2> pins, int driver) {
  DTP_ASSERT(!pins.empty());
  DTP_ASSERT(driver >= 0 && static_cast<size_t>(driver) < pins.size());
  std::vector<Vec2> pts(pins.begin(), pins.end());
  return finalize(pts, static_cast<int>(pins.size()), driver, {});
}

SteinerTree build_rsmt(std::span<const Vec2> pins, int driver,
                       const RsmtOptions& opts) {
  DTP_ASSERT(!pins.empty());
  DTP_ASSERT(driver >= 0 && static_cast<size_t>(driver) < pins.size());
  // Construction counters for the observability artifacts (per-net spans
  // would be far too hot here: millions of calls per placement).
  auto& registry = obs::MetricsRegistry::instance();
  static obs::Counter& trees_built = registry.counter("rsmt.trees_built");
  static obs::Counter& kr_refined = registry.counter("rsmt.kr_refined_trees");
  static obs::Counter& steiner_points = registry.counter("rsmt.steiner_points");
  trees_built.add();
  const int n = static_cast<int>(pins.size());
  if (n <= 2) return build_rmst(pins, driver);
  if (n == 3) return build_median3(pins, driver);
  if (!opts.enable_1steiner || n > opts.kr_max_pins) return build_rmst(pins, driver);

  // Iterated 1-Steiner (Kahng–Robins) over the pin Hanan grid.
  kr_refined.add();
  std::vector<Vec2> pts(pins.begin(), pins.end());
  std::vector<std::pair<int, int>> src;  // provenance of appended Steiner points
  double current = mst_length(pts);

  for (int round = 0; round < opts.kr_max_rounds; ++round) {
    double best_len = current;
    int best_i = -1, best_j = -1;
    std::vector<Vec2> trial = pts;
    trial.emplace_back();
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const Vec2 cand{pins[static_cast<size_t>(i)].x,
                        pins[static_cast<size_t>(j)].y};
        trial.back() = cand;
        const double len = mst_length(trial);
        if (len < best_len - opts.kr_min_gain) {
          best_len = len;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i < 0) break;
    pts.push_back({pins[static_cast<size_t>(best_i)].x,
                   pins[static_cast<size_t>(best_j)].y});
    src.emplace_back(best_i, best_j);
    current = best_len;
  }

  // Prune Steiner points of MST degree <= 2: they cannot shorten a rectilinear
  // MST (triangle inequality), so dropping them never increases length.
  for (;;) {
    if (src.empty()) break;
    const auto parent = prim_parents(pts, 0);
    std::vector<int> degree(pts.size(), 0);
    for (size_t v = 1; v < pts.size(); ++v) {
      ++degree[v];
      ++degree[static_cast<size_t>(parent[v])];
    }
    int drop = -1;
    for (size_t v = static_cast<size_t>(n); v < pts.size(); ++v)
      if (degree[v] <= 2) {
        drop = static_cast<int>(v);
        break;
      }
    if (drop < 0) break;
    pts.erase(pts.begin() + drop);
    src.erase(src.begin() + (drop - n));
  }

  steiner_points.add(src.size());
  return finalize(pts, n, driver, src);
}

}  // namespace dtp::rsmt
