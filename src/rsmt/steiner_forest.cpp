#include "rsmt/steiner_forest.h"

#include "common/assert.h"

namespace dtp::rsmt {

void SteinerForest::finalize() {
  const size_t n = capacity_.size();
  offset_.assign(n + 1, 0);
  int total = 0;
  for (size_t i = 0; i < n; ++i) {
    offset_[i] = total;
    total += capacity_[i];
  }
  offset_[n] = total;
  nodes_.assign(static_cast<size_t>(total), SteinerNode{});
  topo_.assign(static_cast<size_t>(total), 0);
}

void SteinerForest::assign(int net, const SteinerTree& tree) {
  const size_t n = static_cast<size_t>(net);
  const size_t m = tree.nodes.size();
  DTP_ASSERT_MSG(m <= static_cast<size_t>(capacity_[n]),
                 "Steiner tree exceeds its forest arena slot");
  const size_t off = static_cast<size_t>(offset_[n]);
  for (size_t k = 0; k < m; ++k) {
    nodes_[off + k] = tree.nodes[k];
    topo_[off + k] = tree.topo_order[k];
  }
  count_[n] = static_cast<int>(m);
  num_pins_[n] = tree.num_pins;
  root_[n] = tree.root;
}

}  // namespace dtp::rsmt
