// Rectilinear Steiner tree representation for net routing estimation.
//
// The differentiable timer (paper §3.4) needs, per net, a driver-rooted tree
// over the net's pins with per-edge rectilinear lengths, plus — crucially — a
// record of *which pin determines each Steiner coordinate*.  Every Steiner
// point our builders create sits on the Hanan grid, i.e. its x is a copy of
// some pin's x and its y a copy of some pin's y.  That makes the paper's
// Fig. 4 treatment exact in both directions:
//
//   * forward drag (§3.6): between tree rebuilds, Steiner points move with
//     their source pins (update_positions), and
//   * backward redistribution: a gradient landing on a Steiner point's x is
//     added to the x-gradient of its x-source pin (and likewise for y).
//
// Node indices [0, num_pins) are the net's pins in net-pin order; Steiner
// nodes follow.  The tree is stored as a parent array rooted at the driver,
// with a precomputed parent-before-child topological order for the Elmore
// DP passes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/vec2.h"

namespace dtp::rsmt {

struct SteinerNode {
  Vec2 pos;
  int parent = -1;   // node index; -1 for the root
  // Coordinate provenance: pin node -> itself; Steiner node -> the pin
  // (tree-pin index < num_pins) whose coordinate it copies.
  int x_src = -1;
  int y_src = -1;
};

struct SteinerTree {
  using Node = SteinerNode;

  int num_pins = 0;  // nodes [0, num_pins) are pins
  int root = 0;      // node index of the net driver pin
  std::vector<Node> nodes;
  // Parent-before-child order starting at root (size == nodes.size()).
  std::vector<int> topo_order;

  size_t num_nodes() const { return nodes.size(); }
  size_t num_steiner() const { return nodes.size() - static_cast<size_t>(num_pins); }

  double edge_length(int node) const {
    const Node& n = nodes[static_cast<size_t>(node)];
    return n.parent < 0 ? 0.0
                        : manhattan(n.pos, nodes[static_cast<size_t>(n.parent)].pos);
  }

  // Total rectilinear length of the tree.
  double length() const {
    double total = 0.0;
    for (size_t i = 0; i < nodes.size(); ++i)
      total += edge_length(static_cast<int>(i));
    return total;
  }
};

// Non-owning view of one tree — either a SteinerForest arena slice or an
// owning SteinerTree (via view_of).  Field names mirror SteinerTree so the
// Elmore passes are written once against the view.
struct SteinerTreeView {
  int num_pins = 0;
  int root = 0;
  std::span<SteinerNode> nodes;
  std::span<const int> topo_order;

  size_t num_nodes() const { return nodes.size(); }
  size_t num_steiner() const { return nodes.size() - static_cast<size_t>(num_pins); }
  double edge_length(int node) const {
    const SteinerNode& n = nodes[static_cast<size_t>(node)];
    return n.parent < 0 ? 0.0
                        : manhattan(n.pos, nodes[static_cast<size_t>(n.parent)].pos);
  }
  double length() const {
    double total = 0.0;
    for (size_t i = 0; i < nodes.size(); ++i)
      total += edge_length(static_cast<int>(i));
    return total;
  }
};

inline SteinerTreeView view_of(SteinerTree& t) {
  return {t.num_pins, t.root, t.nodes, t.topo_order};
}

// Refreshes node positions after pins moved: pin nodes take the new positions,
// Steiner nodes are dragged along their source pins (paper Fig. 4 / §3.6).
// Tree topology and edge set are unchanged.
void update_positions(SteinerTree& tree, std::span<const Vec2> pin_positions);

// Structural sanity: connected, acyclic, root is the driver, every Steiner
// coordinate matches its source pin's coordinate, topo order is valid.
// Returns an empty string when healthy, else a description of the violation.
std::string check_tree(const SteinerTree& tree);

}  // namespace dtp::rsmt
