#include "rsmt/steiner_tree.h"

#include <string>

#include "common/assert.h"

namespace dtp::rsmt {

void update_positions(SteinerTree& tree, std::span<const Vec2> pin_positions) {
  DTP_ASSERT(pin_positions.size() == static_cast<size_t>(tree.num_pins));
  for (int i = 0; i < tree.num_pins; ++i)
    tree.nodes[static_cast<size_t>(i)].pos = pin_positions[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(tree.num_pins); i < tree.nodes.size(); ++i) {
    SteinerTree::Node& node = tree.nodes[i];
    node.pos.x = pin_positions[static_cast<size_t>(node.x_src)].x;
    node.pos.y = pin_positions[static_cast<size_t>(node.y_src)].y;
  }
}

std::string check_tree(const SteinerTree& tree) {
  const size_t n = tree.nodes.size();
  if (n == 0) return "empty tree";
  if (tree.num_pins <= 0 || static_cast<size_t>(tree.num_pins) > n)
    return "bad num_pins";
  if (tree.root < 0 || tree.root >= tree.num_pins) return "root is not a pin";
  if (tree.topo_order.size() != n) return "topo order size mismatch";
  if (tree.topo_order[0] != tree.root) return "topo order does not start at root";

  std::vector<char> seen(n, 0);
  for (size_t k = 0; k < n; ++k) {
    const int v = tree.topo_order[k];
    if (v < 0 || static_cast<size_t>(v) >= n) return "topo order index out of range";
    if (seen[static_cast<size_t>(v)]) return "topo order repeats a node";
    const int p = tree.nodes[static_cast<size_t>(v)].parent;
    if (v == tree.root) {
      if (p != -1) return "root has a parent";
    } else {
      if (p < 0 || static_cast<size_t>(p) >= n) return "node parent out of range";
      if (!seen[static_cast<size_t>(p)]) return "child precedes parent in topo order";
    }
    seen[static_cast<size_t>(v)] = 1;
  }

  for (size_t i = static_cast<size_t>(tree.num_pins); i < n; ++i) {
    const SteinerTree::Node& node = tree.nodes[i];
    if (node.x_src < 0 || node.x_src >= tree.num_pins) return "steiner x_src invalid";
    if (node.y_src < 0 || node.y_src >= tree.num_pins) return "steiner y_src invalid";
    if (node.pos.x != tree.nodes[static_cast<size_t>(node.x_src)].pos.x)
      return "steiner x does not match its source pin";
    if (node.pos.y != tree.nodes[static_cast<size_t>(node.y_src)].pos.y)
      return "steiner y does not match its source pin";
  }
  return {};
}

}  // namespace dtp::rsmt
