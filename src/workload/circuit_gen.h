// Synthetic benchmark generator: the stand-in for the ICCAD 2015 superblue
// suite (DESIGN.md §1).
//
// Generates a single-clock design with superblue-like *structure*:
//   * a layered combinational DAG of library gates with a guaranteed
//     logic-depth backbone (every level-l gate consumes at least one level
//     l-1 signal),
//   * a register fraction whose Q pins launch paths and D pins end them,
//   * a heavy-tailed fanout distribution (power-law capacity per net),
//   * Rent-style locality: cells belong to clusters and prefer consuming
//     signals from their own cluster, so good placements exist,
//   * an IO ring of fixed pads around the core, and one clock net from a clk
//     pad to every flop (ideal-clock net, excluded from timing).
//
// The floorplan is sized from total cell area and target utilization; movable
// cells start near the core center with jitter (the placer's usual initial
// state).  The clock period is set from the structural depth so the design
// has meaningful negative slack at the global-placement stage, as the
// contest benchmarks do.  Fully deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace dtp::workload {

struct WorkloadOptions {
  uint64_t seed = 1;
  int num_cells = 4000;       // movable standard cells (gates + flops)
  double ff_fraction = 0.12;  // share of num_cells that are flops
  int num_pi = 32;
  int num_po = 32;
  int levels = 24;            // combinational depth
  double fanout_alpha = 2.3;  // power-law exponent of net fanout capacity
  int max_fanout = 24;        // cap on generated net fanout
  int cluster_size = 80;      // cells per locality cluster
  double p_local = 0.75;      // probability an input comes from the own cluster
  double target_density = 0.70;
  // clock_period = clock_scale * levels * delay_per_level_est (+wire margin);
  // < 1 values make the unoptimized design violate, as in the contest suite.
  double clock_scale = 0.85;
  double delay_per_level_est = 0.055;  // ns
};

// Generates a complete design (netlist + constraints + floorplan + initial
// cell positions with pads fixed on the core boundary).
netlist::Design generate_design(const liberty::CellLibrary& lib,
                                const WorkloadOptions& opts,
                                const std::string& name = "synthetic");

// The eight "miniblue" presets mirroring Table 2's relative design sizes
// (superblue cell counts scaled by `scale_divisor`).
struct MinibluePreset {
  const char* name;
  int superblue_cells;  // the real benchmark's cell count (Table 2)
  uint64_t seed;
};
const std::vector<MinibluePreset>& miniblue_presets();
WorkloadOptions miniblue_options(const MinibluePreset& preset,
                                 int scale_divisor = 200);

}  // namespace dtp::workload
