#include "workload/circuit_gen.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace dtp::workload {

using netlist::CellId;
using netlist::Design;
using netlist::NetId;

namespace {

// A "signal" is a driven net available for consumption by later levels.
struct Signal {
  NetId net = netlist::kInvalidId;
  int level = 0;    // 0 = PI or flop Q
  int cluster = 0;
  int capacity = 1;      // remaining sink slots
  bool consumed = false; // has at least one sink
};

struct GateChoice {
  int lib_id;
  int n_inputs;
  double weight;
};

}  // namespace

Design generate_design(const liberty::CellLibrary& lib, const WorkloadOptions& opts,
                       const std::string& name) {
  DTP_ASSERT(opts.num_cells >= 16 && opts.levels >= 2);
  Rng rng(opts.seed);
  Design design(&lib, name);
  netlist::Netlist& nl = design.netlist;

  // --- gate palette, weighted toward 2-input gates like real designs ---
  std::vector<GateChoice> palette;
  auto add_gate = [&](const char* gate_name, double weight) {
    const int id = lib.find_cell(gate_name);
    DTP_ASSERT_MSG(id >= 0, "synthetic library is missing an expected gate");
    int n_inputs = 0;
    for (const auto& pin : lib.cell(id).pins)
      if (pin.dir == liberty::PinDir::Input) ++n_inputs;
    palette.push_back({id, n_inputs, weight});
  };
  add_gate("INV_X1", 0.10);
  add_gate("INV_X2", 0.05);
  add_gate("INV_X4", 0.02);
  add_gate("BUF_X1", 0.06);
  add_gate("BUF_X2", 0.03);
  add_gate("NAND2_X1", 0.26);
  add_gate("NAND2_X2", 0.08);
  add_gate("NOR2_X1", 0.18);
  add_gate("AOI21_X1", 0.12);
  add_gate("XOR2_X1", 0.10);
  double weight_total = 0.0;
  for (const auto& g : palette) weight_total += g.weight;

  auto pick_gate = [&]() -> const GateChoice& {
    double r = rng.uniform() * weight_total;
    for (const auto& g : palette) {
      r -= g.weight;
      if (r <= 0.0) return g;
    }
    return palette.back();
  };

  const int dff_id = lib.find_cell("DFF_X1");
  DTP_ASSERT(dff_id >= 0);
  const int port_in = lib.find_cell(liberty::CellLibrary::kPortInName);
  const int port_out = lib.find_cell(liberty::CellLibrary::kPortOutName);
  DTP_ASSERT(port_in >= 0 && port_out >= 0);

  const int n_ff = std::max(1, static_cast<int>(opts.num_cells * opts.ff_fraction));
  const int n_comb = opts.num_cells - n_ff;
  const int n_clusters =
      std::max(1, opts.num_cells / std::max(1, opts.cluster_size));

  std::vector<Signal> signals;
  std::vector<std::vector<int>> cluster_signals(static_cast<size_t>(n_clusters));
  auto new_signal = [&](CellId driver_cell, const char* driver_pin, int level,
                        int cluster) {
    const NetId net = nl.add_net("n" + std::to_string(nl.num_nets()));
    nl.connect(net, driver_cell, driver_pin);
    Signal sig;
    sig.net = net;
    sig.level = level;
    sig.cluster = cluster;
    sig.capacity = static_cast<int>(
        rng.heavy_tail(opts.fanout_alpha, opts.max_fanout));
    signals.push_back(sig);
    cluster_signals[static_cast<size_t>(cluster)].push_back(
        static_cast<int>(signals.size() - 1));
    return static_cast<int>(signals.size() - 1);
  };

  // --- primary inputs ---
  std::vector<CellId> pi_cells;
  for (int i = 0; i < opts.num_pi; ++i) {
    const CellId c = nl.add_cell("pi_" + std::to_string(i), port_in);
    nl.cell(c).fixed = true;
    pi_cells.push_back(c);
    new_signal(c, "PAD", 0, static_cast<int>(rng.uniform_int(0, n_clusters - 1)));
  }
  const CellId clk_cell = nl.add_cell("clk", port_in);
  nl.cell(clk_cell).fixed = true;
  const NetId clk_net = nl.add_net("clknet");
  nl.connect(clk_net, clk_cell, "PAD");

  // --- flops: Q pins are level-0 signals; D/CK wired later ---
  std::vector<CellId> ff_cells;
  for (int i = 0; i < n_ff; ++i) {
    const CellId c = nl.add_cell("ff_" + std::to_string(i), dff_id);
    ff_cells.push_back(c);
    const int cluster = static_cast<int>(rng.uniform_int(0, n_clusters - 1));
    new_signal(c, "Q", 0, cluster);
    nl.connect(clk_net, c, "CK");
  }

  // --- consume one signal, preferring unconsumed / in-cluster / low level ---
  // Returns the signal index to use as an input at `level` for `cluster`.
  auto choose_input = [&](int level, int cluster, bool force_prev_level) -> int {
    // Pass 1: an unconsumed signal at exactly level-1 (depth backbone).
    if (force_prev_level) {
      // Prefer own cluster, fall back to a global scan sample.
      for (int attempt = 0; attempt < 24; ++attempt) {
        const auto& pool = cluster_signals[static_cast<size_t>(
            attempt < 12 ? cluster
                         : static_cast<int>(rng.uniform_int(0, n_clusters - 1)))];
        if (pool.empty()) continue;
        const int s = pool[static_cast<size_t>(
            rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
        if (signals[static_cast<size_t>(s)].level == level - 1 &&
            signals[static_cast<size_t>(s)].capacity > 0)
          return s;
      }
    }
    // Pass 2: random signal below `level`, cluster-biased.
    for (int attempt = 0; attempt < 48; ++attempt) {
      const bool local = rng.bernoulli(opts.p_local);
      const auto& pool =
          cluster_signals[static_cast<size_t>(local ? cluster
                                                    : static_cast<int>(rng.uniform_int(
                                                          0, n_clusters - 1)))];
      if (pool.empty()) continue;
      const int s = pool[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(pool.size()) - 1))];
      Signal& sig = signals[static_cast<size_t>(s)];
      if (sig.level < level && sig.capacity > 0) return s;
    }
    // Pass 3: exhaustive fallback — any signal below `level` (capacity
    // ignored so generation always succeeds).
    for (size_t s = 0; s < signals.size(); ++s)
      if (signals[s].level < level) return static_cast<int>(s);
    DTP_ASSERT_MSG(false, "no candidate signal below requested level");
    return 0;
  };

  auto consume = [&](int sig_idx, NetId* out_net) {
    Signal& sig = signals[static_cast<size_t>(sig_idx)];
    sig.consumed = true;
    if (sig.capacity > 0) --sig.capacity;
    *out_net = sig.net;
  };

  // --- combinational gates, level by level ---
  // Distribute gates over levels 1..levels; guarantee one per level.
  std::vector<int> gate_level(static_cast<size_t>(n_comb));
  for (int i = 0; i < n_comb; ++i) {
    gate_level[static_cast<size_t>(i)] =
        i < opts.levels ? i + 1
                        : static_cast<int>(rng.uniform_int(1, opts.levels));
  }
  std::sort(gate_level.begin(), gate_level.end());

  for (int i = 0; i < n_comb; ++i) {
    const GateChoice& gate = pick_gate();
    const int level = gate_level[static_cast<size_t>(i)];
    const int cluster = static_cast<int>(rng.uniform_int(0, n_clusters - 1));
    const CellId c = nl.add_cell("g" + std::to_string(i), gate.lib_id);
    const liberty::LibCell& master = lib.cell(gate.lib_id);
    int input_no = 0;
    for (size_t lp = 0; lp < master.pins.size(); ++lp) {
      if (master.pins[lp].dir != liberty::PinDir::Input) continue;
      const int s = choose_input(level, cluster, /*force_prev_level=*/input_no == 0);
      NetId in_net;
      consume(s, &in_net);
      nl.connect(in_net, c, static_cast<int>(lp));
      ++input_no;
    }
    new_signal(c, "Z", level, cluster);
  }

  // --- flop D inputs: deep signals, cluster-biased ---
  for (const CellId ff : ff_cells) {
    // Reuse choose_input at the deepest level + 1 so any signal qualifies;
    // bias the first attempt set toward deep levels by sampling a few and
    // keeping the deepest.
    int best = -1;
    for (int attempt = 0; attempt < 6; ++attempt) {
      const int s = choose_input(opts.levels + 1, static_cast<int>(rng.uniform_int(
                                                      0, n_clusters - 1)),
                                 false);
      if (best < 0 ||
          signals[static_cast<size_t>(s)].level >
              signals[static_cast<size_t>(best)].level)
        best = s;
    }
    NetId in_net;
    consume(best, &in_net);
    nl.connect(in_net, ff, "D");
  }

  // --- primary outputs: deepest unconsumed signals first ---
  std::vector<int> unconsumed;
  for (size_t s = 0; s < signals.size(); ++s)
    if (!signals[s].consumed) unconsumed.push_back(static_cast<int>(s));
  std::sort(unconsumed.begin(), unconsumed.end(), [&](int a, int b) {
    return signals[static_cast<size_t>(a)].level >
           signals[static_cast<size_t>(b)].level;
  });
  int n_po = opts.num_po;
  size_t next_unconsumed = 0;
  std::vector<CellId> po_cells;
  auto add_po = [&](int sig_idx) {
    const CellId c =
        nl.add_cell("po_" + std::to_string(po_cells.size()), port_out);
    nl.cell(c).fixed = true;
    po_cells.push_back(c);
    NetId in_net;
    consume(sig_idx, &in_net);
    nl.connect(in_net, c, "PAD");
  };
  for (int i = 0; i < n_po; ++i) {
    int s;
    if (next_unconsumed < unconsumed.size())
      s = unconsumed[next_unconsumed++];
    else
      s = choose_input(opts.levels + 1,
                       static_cast<int>(rng.uniform_int(0, n_clusters - 1)), false);
    add_po(s);
  }
  // Every remaining dangling driver gets its own PO (nets must have sinks).
  for (; next_unconsumed < unconsumed.size(); ++next_unconsumed) {
    if (!signals[static_cast<size_t>(unconsumed[next_unconsumed])].consumed)
      add_po(unconsumed[next_unconsumed]);
  }

  nl.validate();

  // --- floorplan from area and utilization ---
  double total_area = 0.0;
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const liberty::LibCell& master = nl.lib_cell_of(static_cast<CellId>(c));
    total_area += master.width * master.height;
  }
  const liberty::LibCell& any_gate = lib.cell(palette[0].lib_id);
  const double row_h = any_gate.height;
  double side = std::sqrt(total_area / opts.target_density);
  // Snap to whole rows.
  const int rows = std::max(4, static_cast<int>(std::ceil(side / row_h)));
  side = rows * row_h;
  design.floorplan.core = Rect(0.0, 0.0, side, side);
  design.floorplan.row_height = row_h;
  design.floorplan.site_width = 0.5;

  // --- positions: pads on the boundary ring, movables near the center ---
  design.init_positions();
  std::vector<CellId> pads;
  for (size_t c = 0; c < nl.num_cells(); ++c)
    if (nl.cell_is_port(static_cast<CellId>(c)))
      pads.push_back(static_cast<CellId>(c));
  const double perimeter = 4.0 * side;
  for (size_t i = 0; i < pads.size(); ++i) {
    const double t = perimeter * static_cast<double>(i) /
                     static_cast<double>(pads.size());
    double x, y;
    if (t < side) {
      x = t;
      y = 0.0;
    } else if (t < 2.0 * side) {
      x = side;
      y = t - side;
    } else if (t < 3.0 * side) {
      x = 3.0 * side - t;
      y = side;
    } else {
      x = 0.0;
      y = 4.0 * side - t;
    }
    design.cell_x[static_cast<size_t>(pads[i])] = x;
    design.cell_y[static_cast<size_t>(pads[i])] = y;
  }
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    if (nl.cell(static_cast<CellId>(c)).fixed) continue;
    design.cell_x[c] = 0.5 * side + rng.normal(0.0, side * 0.08);
    design.cell_y[c] = 0.5 * side + rng.normal(0.0, side * 0.08);
    design.cell_x[c] = std::clamp(design.cell_x[c], 0.0, side - 1.0);
    design.cell_y[c] = std::clamp(design.cell_y[c], 0.0, side - 1.0);
  }

  // --- constraints: period from structural depth ---
  design.constraints.clock_period =
      opts.clock_scale * opts.levels * opts.delay_per_level_est;
  design.constraints.clock_slew = lib.default_slew;
  design.constraints.input_slew = lib.default_slew;

  return design;
}

const std::vector<MinibluePreset>& miniblue_presets() {
  // Cell counts from paper Table 2.
  static const std::vector<MinibluePreset> presets = {
      {"miniblue1", 1209716, 101}, {"miniblue3", 1213253, 103},
      {"miniblue4", 795645, 104},  {"miniblue5", 1086888, 105},
      {"miniblue7", 1931639, 107}, {"miniblue10", 1876103, 110},
      {"miniblue16", 981559, 116}, {"miniblue18", 768068, 118},
  };
  return presets;
}

WorkloadOptions miniblue_options(const MinibluePreset& preset, int scale_divisor) {
  WorkloadOptions opts;
  opts.seed = preset.seed;
  opts.num_cells = std::max(500, preset.superblue_cells / scale_divisor);
  // IO and depth scale sublinearly with design size.
  opts.num_pi = std::max(16, opts.num_cells / 160);
  opts.num_po = std::max(16, opts.num_cells / 160);
  opts.levels = std::min(40, 16 + opts.num_cells / 500);
  return opts;
}

}  // namespace dtp::workload
