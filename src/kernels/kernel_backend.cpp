#include "kernels/kernel_backend.h"

#include <atomic>
#include <cstdlib>

#include "common/logger.h"

namespace dtp::kernels {

// Defined in scalar_backend.cpp / simd_backend.cpp.
const KernelBackend& scalar_backend();
const KernelBackend& simd_backend();

namespace {

struct Entry {
  const char* name;
  const KernelBackend& (*get)();
};

// Selection-priority order; scalar first so it is the default everywhere.
constexpr Entry kRegistry[] = {
    {"scalar", scalar_backend},
    {"simd", simd_backend},
};

std::atomic<const KernelBackend*> g_current{nullptr};

const KernelBackend* resolve_env() {
  const char* env = std::getenv("DTP_KERNEL_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    for (const Entry& e : kRegistry)
      if (e.name == std::string(env)) return &e.get();
    DTP_LOG_WARN("unknown DTP_KERNEL_BACKEND '%s'; using scalar", env);
  }
  return &kRegistry[0].get();
}

}  // namespace

const KernelBackend& backend() {
  const KernelBackend* cur = g_current.load(std::memory_order_relaxed);
  if (cur == nullptr) {
    // First use: latch the environment selection.  A concurrent first call
    // resolves to the same pointer, so the race is benign.
    cur = resolve_env();
    g_current.store(cur, std::memory_order_relaxed);
  }
  return *cur;
}

bool set_backend(const std::string& name) {
  for (const Entry& e : kRegistry) {
    if (name == e.name) {
      g_current.store(&e.get(), std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> out;
  for (const Entry& e : kRegistry) out.emplace_back(e.name);
  return out;
}

const KernelBackend* find_backend(const std::string& name) {
  for (const Entry& e : kRegistry)
    if (name == e.name) return &e.get();
  return nullptr;
}

}  // namespace dtp::kernels
