// Half-sample cosine/sine transform plans for the spectral Poisson solver
// (DESIGN.md §15).
//
// Basis (Neumann eigenfunctions of the m-bin grid):
//
//   C_u(x) = cos(pi*u*(x+1/2)/m),   S_u(x) = sin(pi*u*(x+1/2)/m)
//
// with three row kernels:
//
//   dct2      : X_u  = sum_x x_x * C_u(x)          (analysis / DCT-II)
//   eval_cos  : f(x) = sum_u a_u * C_u(x)          (synthesis / DCT-III-like)
//   eval_sin  : f(x) = sum_u b_u * S_u(x)          (sine synthesis)
//
// Two implementations live here:
//
//  * HalfSampleDirect — the O(m^2)-per-row direct table sums.  Any m >= 2.
//    This is the property-test oracle and the fallback the Poisson solver
//    uses on non-power-of-two grids (with a one-time warning and the
//    `placer.poisson.slow_path` counter).
//
//  * DctPlan — the real-to-complex fast path (power-of-two m), following
//    Zhang & Sapatnekar, "Accelerating Electrostatics-based Global Placement
//    with Enhanced FFT Computation" (arXiv 2510.21547).  Instead of the
//    seed's size-2m complex FFT per row, each row runs ONE complex FFT of
//    size m/2: the row is even/odd permuted (Makhoul), packed into a
//    half-length complex sequence, transformed, and unpacked with fused
//    DCT/real-FFT twiddles.  eval_sin reuses the eval_cos core through the
//    exact identity  sin(pi*u*(x+1/2)/m) = (-1)^x cos(pi*(m-u)*(x+1/2)/m),
//    i.e. a coefficient reversal plus output sign alternation — no separate
//    sine machinery.  Roughly 4x fewer butterflies per row than the seed
//    plus strictly in-cache scratch.
//
// The plan holds tables + preallocated scratch; the row kernels themselves
// live in kernel_impl.h and are compiled per backend (scalar / simd), so a
// plan is shared across backends.  Scratch makes row kernels non-reentrant
// per plan — matching PoissonSolver's "solve() is not concurrency-safe on
// one instance" contract.
#pragma once

#include <cstddef>
#include <vector>

#include "kernels/fft.h"

namespace dtp::kernels {

// Direct O(m^2)-per-row sums: oracle + non-power-of-two fallback.
class HalfSampleDirect {
 public:
  explicit HalfSampleDirect(size_t m);

  size_t size() const { return m_; }

  // out[u] = sum_x in[x] cos(pi u (x+1/2) / m)
  void dct2(const double* in, double* out) const;
  // out[x] = sum_u in[u] cos(pi u (x+1/2) / m)
  void eval_cos(const double* in, double* out) const;
  // out[x] = sum_u in[u] sin(pi u (x+1/2) / m)
  void eval_sin(const double* in, double* out) const;

 private:
  size_t m_;
  std::vector<double> cos_tab_, sin_tab_;  // [u*m + x]
};

// Real-to-complex half-sample transform plan (power-of-two m >= 2): twiddle
// tables + the size-m/2 complex FFT + scratch.  Row kernels are free
// functions in kernel_impl.h, instantiated inside each backend.
class DctPlan {
 public:
  explicit DctPlan(size_t m);  // m must be a power of two, >= 2

  size_t size() const { return m_; }
  size_t half() const { return m_ / 2; }
  const Fft& fft() const { return fft_; }

  // DCT twiddles e^{i pi k/(2m)}: cos_tw()[k], sin_tw()[k] for k < m.
  const double* cos_tw() const { return cos_tw_.data(); }
  const double* sin_tw() const { return sin_tw_.data(); }
  // Real-FFT unpack twiddles e^{i 2 pi k/m}: k < m/2.
  const double* unpack_re() const { return unpack_re_.data(); }
  const double* unpack_im() const { return unpack_im_.data(); }

  // Preallocated per-row scratch (sized in the constructor; row kernels never
  // allocate).  zre/zim: m/2 complex lanes; v and rev: m real lanes.
  double* scratch_re() const { return zre_.data(); }
  double* scratch_im() const { return zim_.data(); }
  double* scratch_v() const { return v_.data(); }
  double* scratch_rev() const { return rev_.data(); }

 private:
  size_t m_;
  Fft fft_;  // size m/2
  std::vector<double> cos_tw_, sin_tw_;
  std::vector<double> unpack_re_, unpack_im_;
  mutable std::vector<double> zre_, zim_, v_, rev_;
};

}  // namespace dtp::kernels
