// Scalar kernel backend — the bitwise-golden default.
//
// Compiled with the project-default flags only.  The golden placement tests
// pin this backend's results bit for bit; any numeric change here (or in
// kernel_impl.h as seen by this TU) requires re-capturing those constants.
#include "kernels/kernel_backend.h"

#include "kernels/kernel_impl.h"
#include "obs/trace.h"

namespace dtp::kernels {

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  const char* name() const override { return "scalar"; }

  void dct2_rows(const DctPlan& plan, const double* in, double* out,
                 size_t rows) const override {
    DTP_PROF_SCOPE("k_dct2_rows");
    const size_t m = plan.size();
    for (size_t r = 0; r < rows; ++r)
      impl::dct2_row(plan, in + r * m, out + r * m);
  }

  void idct_rows(const DctPlan& plan, const double* in, double* out,
                 size_t rows) const override {
    DTP_PROF_SCOPE("k_idct_rows");
    const size_t m = plan.size();
    for (size_t r = 0; r < rows; ++r)
      impl::idct_row(plan, in + r * m, out + r * m);
  }

  void idst_rows(const DctPlan& plan, const double* in,
                 const double* col_scale, double* out,
                 size_t rows) const override {
    DTP_PROF_SCOPE("k_idst_rows");
    const size_t m = plan.size();
    for (size_t r = 0; r < rows; ++r)
      impl::idst_row(plan, in + r * m, col_scale, out + r * m);
  }

  void transpose(size_t m, const double* src, double* dst) const override {
    DTP_PROF_SCOPE("k_transpose");
    impl::transpose(m, src, dst);
  }

  void transpose_scaled(size_t m, const double* src, const double* row_scale,
                        double* dst) const override {
    DTP_PROF_SCOPE("k_transpose");
    impl::transpose_scaled(m, src, row_scale, dst);
  }

  void density_scatter(const DensityGrid& grid, const DensityCells& cells,
                       const double* x, const double* y,
                       double* rho) const override {
    DTP_PROF_SCOPE("k_density_scatter");
    impl::density_scatter(grid, cells, x, y, rho);
  }

  void density_gather(const DensityGrid& grid, const DensityCells& cells,
                      const double* x, const double* y, const double* field_x,
                      const double* field_y, double lambda, double* gx,
                      double* gy) const override {
    DTP_PROF_SCOPE("k_density_gather");
    impl::density_gather(grid, cells, x, y, field_x, field_y, lambda, gx, gy);
  }

  double wa_axis(const double* coords, size_t n, double gamma, double* grads,
                 double* ep, double* em) const override {
    DTP_PROF_SCOPE("k_wa_axis");
    return impl::wa_axis(coords, n, gamma, grads, ep, em);
  }

  void lut_pair(const liberty::Lut& delay, const liberty::Lut& slew,
                double slew_in, double load, liberty::Lut::Query& delay_q,
                liberty::Lut::Query& slew_q) const override {
    DTP_PROF_SCOPE("k_lut_pair");
    impl::lut_pair(delay, slew, slew_in, load, delay_q, slew_q);
  }
};

}  // namespace

const KernelBackend& scalar_backend() {
  static const ScalarBackend backend;
  return backend;
}

}  // namespace dtp::kernels
