// Kernel-backend seam (DESIGN.md §15): one dispatch layer for every hot loop
// in the placer's inner iteration — Poisson spectral transforms + transposes,
// density scatter/gather, the weighted-average wirelength gradient, and the
// Liberty NLDM bilinear LUT interpolation pair.
//
// In the spirit of DG-RePlAce's dataflow-oriented kernels (PAPERS.md, arXiv
// 2404.13049), callers never name an implementation: they fetch the process
// backend with kernels::backend() and invoke virtual entry points.  Two
// implementations register at startup:
//
//   scalar — the bitwise-golden default.  Results are pinned, bit for bit,
//            by the golden placement tests; numeric changes here require
//            re-capturing the golden constants.
//   simd   — the same entry points compiled for auto-vectorization
//            (restrict-qualified loops, -O3, optionally -march=native via
//            -DDTP_SIMD_NATIVE=ON).  Validated by tolerance-equivalence
//            tests against scalar, never by the golden suite.
//
// Selection: `--kernel-backend NAME` on the tools, or the DTP_KERNEL_BACKEND
// environment variable (read once, on first use); scalar wins ties.  The
// current backend is a single relaxed atomic pointer — swap it before
// spawning placement work, not mid-solve.
//
// Contracts every backend must honor:
//  * no allocation in any entry point (steady-state zero-alloc, DESIGN.md
//    §10) — scratch lives in the DctPlan or is passed in by the caller;
//  * every entry point publishes a DTP_PROF_SCOPE span so the sampling
//    profiler (DESIGN.md §14) attributes time to the kernel layer;
//  * scalar must keep the exact operation order the golden constants pin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernels/transform.h"
#include "liberty/lut.h"

namespace dtp::kernels {

// Bin-grid geometry for the density kernels (mirrors DensityModel).
struct DensityGrid {
  int m = 0;                        // bins per dimension
  double bin_w = 0.0, bin_h = 0.0;  // bin extent in microns
  double core_xl = 0.0, core_yl = 0.0;
  double core_w = 0.0, core_h = 0.0;
};

// Borrowed SoA view of the cell population (caller owns the arrays).
struct DensityCells {
  const double* w = nullptr;     // cell widths
  const double* h = nullptr;     // cell heights
  const double* area = nullptr;  // w*h, 0 for pads
  const char* movable = nullptr;
  size_t n = 0;
};

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;
  virtual const char* name() const = 0;

  // ---- Poisson transform family (power-of-two fast path) ----------------
  // `rows` contiguous rows of length plan.size(); in/out must not overlap.
  virtual void dct2_rows(const DctPlan& plan, const double* in, double* out,
                         size_t rows) const = 0;
  virtual void idct_rows(const DctPlan& plan, const double* in, double* out,
                         size_t rows) const = 0;
  // Sine synthesis rows; when col_scale != nullptr, element v of every input
  // row is scaled by col_scale[v] first (fused into the coefficient pack).
  virtual void idst_rows(const DctPlan& plan, const double* in,
                         const double* col_scale, double* out,
                         size_t rows) const = 0;
  // Cache-blocked square transpose: dst[j*m+i] = src[i*m+j].
  virtual void transpose(size_t m, const double* src, double* dst) const = 0;
  // Fused twiddle+transpose: dst[j*m+i] = src[i*m+j] * row_scale[i].
  virtual void transpose_scaled(size_t m, const double* src,
                                const double* row_scale, double* dst) const = 0;

  // ---- density scatter / gather -----------------------------------------
  // Splat (+=) each movable cell's inflated footprint into rho (caller
  // zeroes rho first).
  virtual void density_scatter(const DensityGrid& grid,
                               const DensityCells& cells, const double* x,
                               const double* y, double* rho) const = 0;
  // Accumulate (+=) -lambda * charge-weighted field into gx/gy.
  virtual void density_gather(const DensityGrid& grid,
                              const DensityCells& cells, const double* x,
                              const double* y, const double* field_x,
                              const double* field_y, double lambda, double* gx,
                              double* gy) const = 0;

  // ---- wirelength -------------------------------------------------------
  // Per-axis weighted-average value and gradient for one net; grads is
  // overwritten.  ep/em are caller-provided scratch of size n.
  virtual double wa_axis(const double* coords, size_t n, double gamma,
                         double* grads, double* ep, double* em) const = 0;

  // ---- Liberty LUT pair -------------------------------------------------
  // Delay + output-slew bilinear interpolation of one cell arc at the same
  // (input slew, load) query point (the gather_arc_candidates inner loop).
  virtual void lut_pair(const liberty::Lut& delay, const liberty::Lut& slew,
                        double slew_in, double load,
                        liberty::Lut::Query& delay_q,
                        liberty::Lut::Query& slew_q) const = 0;
};

// The current process-wide backend.  First call resolves DTP_KERNEL_BACKEND
// (unknown names warn and fall back to scalar); afterwards it is one relaxed
// atomic load.
const KernelBackend& backend();

// Selects by name ("scalar", "simd"); returns false (selection unchanged)
// for unknown names.
bool set_backend(const std::string& name);

// Registered backend names, selection-priority order.
std::vector<std::string> backend_names();

// Direct registry access (tests, tolerance-equivalence harnesses).
const KernelBackend* find_backend(const std::string& name);

}  // namespace dtp::kernels
