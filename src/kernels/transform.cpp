#include "kernels/transform.h"

#include <cmath>

#include "common/assert.h"

namespace dtp::kernels {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

HalfSampleDirect::HalfSampleDirect(size_t m) : m_(m) {
  DTP_ASSERT(m >= 2);
  cos_tab_.resize(m * m);
  sin_tab_.resize(m * m);
  for (size_t u = 0; u < m; ++u)
    for (size_t x = 0; x < m; ++x) {
      const double theta =
          kPi * static_cast<double>(u) * (static_cast<double>(x) + 0.5) /
          static_cast<double>(m);
      cos_tab_[u * m + x] = std::cos(theta);
      sin_tab_[u * m + x] = std::sin(theta);
    }
}

void HalfSampleDirect::dct2(const double* in, double* out) const {
  for (size_t u = 0; u < m_; ++u) {
    double acc = 0.0;
    const double* row = cos_tab_.data() + u * m_;
    for (size_t x = 0; x < m_; ++x) acc += in[x] * row[x];
    out[u] = acc;
  }
}

void HalfSampleDirect::eval_cos(const double* in, double* out) const {
  for (size_t x = 0; x < m_; ++x) {
    double acc = 0.0;
    for (size_t u = 0; u < m_; ++u) acc += in[u] * cos_tab_[u * m_ + x];
    out[x] = acc;
  }
}

void HalfSampleDirect::eval_sin(const double* in, double* out) const {
  for (size_t x = 0; x < m_; ++x) {
    double acc = 0.0;
    for (size_t u = 0; u < m_; ++u) acc += in[u] * sin_tab_[u * m_ + x];
    out[x] = acc;
  }
}

DctPlan::DctPlan(size_t m) : m_(m), fft_(m / 2) {
  DTP_ASSERT_MSG(m >= 2 && is_power_of_two(m),
                 "DctPlan requires a power-of-two size");
  cos_tw_.resize(m);
  sin_tw_.resize(m);
  for (size_t k = 0; k < m; ++k) {
    const double theta = kPi * static_cast<double>(k) / (2.0 * static_cast<double>(m));
    cos_tw_[k] = std::cos(theta);
    sin_tw_[k] = std::sin(theta);
  }
  const size_t h = m / 2;
  unpack_re_.resize(h);
  unpack_im_.resize(h);
  for (size_t k = 0; k < h; ++k) {
    const double theta = 2.0 * kPi * static_cast<double>(k) / static_cast<double>(m);
    unpack_re_[k] = std::cos(theta);
    unpack_im_[k] = std::sin(theta);
  }
  zre_.resize(h);
  zim_.resize(h);
  v_.resize(m);
  rev_.resize(m);
}

}  // namespace dtp::kernels
