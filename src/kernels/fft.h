// Iterative radix-2 complex FFT plan — the primitive under the kernel-layer
// half-sample transforms (DESIGN.md §15).
//
// Moved here from src/placer/fft.h when the kernel-backend seam was
// introduced: nothing outside src/kernels/ may call Fft directly any more;
// the placer reaches the spectral kernels through KernelBackend.  The plan
// operates on caller-owned re/im arrays so backends can reuse preallocated
// scratch (the zero-steady-state-allocation contract, DESIGN.md §10).
#pragma once

#include <cstddef>
#include <vector>

namespace dtp::kernels {

using std::size_t;

inline bool is_power_of_two(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Radix-2 complex FFT plan for a fixed power-of-two size (size 1 is the
// identity, so half-size plans of tiny grids stay well-defined).
class Fft {
 public:
  explicit Fft(size_t n);  // n must be a power of two

  size_t size() const { return n_; }

  // In-place forward DFT: X_k = sum_n x_n e^{-i 2 pi k n / N}.
  void forward(double* re, double* im) const { transform(re, im, false); }
  // In-place inverse DFT *without* the 1/N factor.
  void inverse(double* re, double* im) const { transform(re, im, true); }

 private:
  void transform(double* re, double* im, bool invert) const;

  size_t n_;
  std::vector<size_t> bit_reverse_;
  std::vector<double> tw_re_, tw_im_;  // e^{-i 2 pi k / N}, k < N/2
};

}  // namespace dtp::kernels
