#include "kernels/fft.h"

#include <cmath>
#include <utility>

#include "common/assert.h"

namespace dtp::kernels {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Fft::Fft(size_t n) : n_(n) {
  DTP_ASSERT_MSG(is_power_of_two(n), "FFT size must be a power of two");
  bit_reverse_.resize(n);
  size_t bits = 0;
  while ((size_t{1} << bits) < n) ++bits;
  for (size_t i = 0; i < n; ++i) {
    size_t r = 0;
    for (size_t b = 0; b < bits; ++b)
      if (i & (size_t{1} << b)) r |= size_t{1} << (bits - 1 - b);
    bit_reverse_[i] = r;
  }
  tw_re_.resize(n / 2);
  tw_im_.resize(n / 2);
  for (size_t k = 0; k < n / 2; ++k) {
    tw_re_[k] = std::cos(2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
    tw_im_[k] = -std::sin(2.0 * kPi * static_cast<double>(k) / static_cast<double>(n));
  }
}

void Fft::transform(double* re, double* im, bool invert) const {
  for (size_t i = 0; i < n_; ++i) {
    const size_t j = bit_reverse_[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (size_t len = 2; len <= n_; len <<= 1) {
    const size_t step = n_ / len;
    for (size_t block = 0; block < n_; block += len) {
      for (size_t k = 0; k < len / 2; ++k) {
        const size_t t = k * step;
        const double wr = tw_re_[t];
        const double wi = invert ? -tw_im_[t] : tw_im_[t];
        const size_t a = block + k;
        const size_t b = a + len / 2;
        const double xr = re[b] * wr - im[b] * wi;
        const double xi = re[b] * wi + im[b] * wr;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] += xr;
        im[a] += xi;
      }
    }
  }
}

}  // namespace dtp::kernels
