// Kernel bodies shared by the scalar and simd backends (DESIGN.md §15).
//
// Every function here is `static`: this header is included by exactly two
// translation units (scalar_backend.cpp, simd_backend.cpp), and internal
// linkage guarantees each backend compiles its *own* copy under its own
// optimization flags.  With ordinary `inline` linkage the linker would keep a
// single instantiation and silently collapse the two backends into one —
// the simd backend would then be scalar code with a different name.
//
// The math is written once so the backends cannot drift; the *numerical
// contract* still differs per backend: the scalar TU builds with the
// project-default flags and its results are pinned bitwise by the golden
// placement tests, while the simd TU builds with -O3 (optionally
// -march=native) where FMA contraction and vector reassociation may perturb
// the last ulps — which is exactly why simd is validated by
// tolerance-equivalence tests instead of the golden suite.
//
// Loops are restrict-qualified and branch-light on purpose (see the
// accelerator-guide rules: coalesced access, fused passes, no aliasing) so
// the compiler's auto-vectorizer can do the wide lanes without intrinsics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "kernels/kernel_backend.h"
#include "kernels/transform.h"
#include "liberty/lut.h"

#if defined(__GNUC__) || defined(__clang__)
#define DTP_RESTRICT __restrict__
#else
#define DTP_RESTRICT
#endif

namespace dtp::kernels::impl {

using std::size_t;

// ---------------------------------------------------------------- DCT-II ----
// One row of X_u = sum_x in[x] C_u(x) via Makhoul's even/odd permutation and
// a size-m/2 complex FFT of the packed real sequence (arXiv 2510.21547):
//
//   v[n] = in[2n], v[m-1-n] = in[2n+1]          (half-sample fold)
//   z[n] = v[2n] + i v[2n+1],  Z = FFT_{m/2}(z) (real-FFT packing)
//   V[k] = E[k] + e^{-2pi i k/m} O[k]           (real-FFT unpack)
//   X_k     = cos(t_k) Re V[k] + sin(t_k) Im V[k],  t_k = pi k/(2m)
//   X_{m-k} = sin(t_k) Re V[k] - cos(t_k) Im V[k]
static void dct2_row(const DctPlan& plan, const double* DTP_RESTRICT in,
                     double* DTP_RESTRICT out) {
  const size_t m = plan.size();
  const size_t h = plan.half();
  double* DTP_RESTRICT v = plan.scratch_v();
  double* DTP_RESTRICT zr = plan.scratch_re();
  double* DTP_RESTRICT zi = plan.scratch_im();
  for (size_t n = 0; n < h; ++n) {
    v[n] = in[2 * n];
    v[m - 1 - n] = in[2 * n + 1];
  }
  for (size_t n = 0; n < h; ++n) {
    zr[n] = v[2 * n];
    zi[n] = v[2 * n + 1];
  }
  plan.fft().forward(zr, zi);
  const double* DTP_RESTRICT ct = plan.cos_tw();
  const double* DTP_RESTRICT st = plan.sin_tw();
  const double* DTP_RESTRICT ur = plan.unpack_re();
  const double* DTP_RESTRICT ui = plan.unpack_im();
  // V[0] = Re Z[0] + Im Z[0] (real), V[m/2] = Re Z[0] - Im Z[0] (real).
  out[0] = zr[0] + zi[0];
  out[h] = ct[h] * (zr[0] - zi[0]);
  for (size_t k = 1; k < h; ++k) {
    const double zrk = zr[k], zik = zi[k];
    const double zrh = zr[h - k], zih = zi[h - k];
    const double er = 0.5 * (zrk + zrh);   // E[k] = (Z[k] + conj(Z[h-k]))/2
    const double ei = 0.5 * (zik - zih);
    const double og = 0.5 * (zik + zih);   // O[k] = -i (Z[k] - conj(Z[h-k]))/2
    const double oi = 0.5 * (zrh - zrk);
    const double wr = ur[k], wi = ui[k];   // e^{-2pi i k/m} = wr - i wi
    const double vr = er + (og * wr + oi * wi);
    const double vi = ei + (oi * wr - og * wi);
    out[k] = ct[k] * vr + st[k] * vi;
    out[m - k] = st[k] * vr - ct[k] * vi;
  }
}

// ------------------------------------------------------------- eval_cos ----
// One row of f(x) = sum_u a_u C_u(x) — the inverse of the pipeline above.
// The Hermitian spectrum V'[u] = (1/2) e^{i t_u} (a_u - i a_{m-u}) (with
// V'[0] = a_0) is folded straight into the packed half-length spectrum
// Z[k] = E + iO (both twiddles fused into one pass), one inverse FFT of
// size m/2 recovers the interleaved sequence, and the even/odd unfold
// restores half-sample order.
static void idct_row(const DctPlan& plan, const double* DTP_RESTRICT in,
                     double* DTP_RESTRICT out) {
  const size_t m = plan.size();
  const size_t h = plan.half();
  double* DTP_RESTRICT v = plan.scratch_v();
  double* DTP_RESTRICT zr = plan.scratch_re();
  double* DTP_RESTRICT zi = plan.scratch_im();
  const double* DTP_RESTRICT ct = plan.cos_tw();
  const double* DTP_RESTRICT st = plan.sin_tw();
  const double* DTP_RESTRICT ur = plan.unpack_re();
  const double* DTP_RESTRICT ui = plan.unpack_im();
  for (size_t k = 0; k < h; ++k) {
    // V1 = 2 V'[k], V2 = 2 V'[k+h]; the factor 2 cancels the real-FFT halves.
    double v1r, v1i;
    if (k == 0) {
      v1r = 2.0 * in[0];
      v1i = 0.0;
    } else {
      v1r = ct[k] * in[k] + st[k] * in[m - k];
      v1i = st[k] * in[k] - ct[k] * in[m - k];
    }
    const double aj = in[k + h];
    const double am = in[h - k];  // k = 0 hits in[h] twice: V'[h] is real
    const double v2r = ct[k + h] * aj + st[k + h] * am;
    const double v2i = st[k + h] * aj - ct[k + h] * am;
    const double er = v1r + v2r, ei = v1i + v2i;   // 2E'
    const double dr = v1r - v2r, di = v1i - v2i;
    const double wr = ur[k], wi = ui[k];           // e^{+2pi i k/m}
    const double og = dr * wr - di * wi;           // 2O'
    const double oi = dr * wi + di * wr;
    zr[k] = er - oi;  // Z = E' + i O'
    zi[k] = ei + og;
  }
  plan.fft().inverse(zr, zi);
  for (size_t n = 0; n < h; ++n) {
    v[2 * n] = 0.5 * zr[n];
    v[2 * n + 1] = 0.5 * zi[n];
  }
  for (size_t n = 0; n < h; ++n) {
    out[2 * n] = v[n];
    out[2 * n + 1] = v[m - 1 - n];
  }
}

// ------------------------------------------------------------- eval_sin ----
// f(x) = sum_u b_u S_u(x) via the exact half-sample identity
//   S_u(x) = (-1)^x C_{m-u}(x),
// i.e. reverse the coefficients (dropping b_0, whose basis row is zero),
// run the cosine synthesis, and alternate output signs.  col_scale, when
// present, is fused into the reversal pass (the solver's k_v wavenumber
// scaling — one sweep saved per row).
static void idst_row(const DctPlan& plan, const double* DTP_RESTRICT in,
                     const double* DTP_RESTRICT col_scale,
                     double* DTP_RESTRICT out) {
  const size_t m = plan.size();
  double* DTP_RESTRICT rev = plan.scratch_rev();
  rev[0] = 0.0;
  if (col_scale != nullptr) {
    for (size_t u = 1; u < m; ++u) rev[u] = in[m - u] * col_scale[m - u];
  } else {
    for (size_t u = 1; u < m; ++u) rev[u] = in[m - u];
  }
  idct_row(plan, rev, out);
  for (size_t x = 1; x < m; x += 2) out[x] = -out[x];
}

// ------------------------------------------------------------ transpose ----
// Cache-blocked square transpose (the "cache-blocked column traversal" of
// arXiv 2510.21547): 32x32 tiles keep both the read and the write stream
// inside L1 for the grid sizes the placer uses.
inline constexpr size_t kTransposeTile = 32;

static void transpose(size_t m, const double* DTP_RESTRICT src,
                      double* DTP_RESTRICT dst) {
  for (size_t i0 = 0; i0 < m; i0 += kTransposeTile) {
    const size_t i1 = std::min(m, i0 + kTransposeTile);
    for (size_t j0 = 0; j0 < m; j0 += kTransposeTile) {
      const size_t j1 = std::min(m, j0 + kTransposeTile);
      for (size_t i = i0; i < i1; ++i)
        for (size_t j = j0; j < j1; ++j) dst[j * m + i] = src[i * m + j];
    }
  }
}

static void transpose_scaled(size_t m, const double* DTP_RESTRICT src,
                             const double* DTP_RESTRICT row_scale,
                             double* DTP_RESTRICT dst) {
  for (size_t i0 = 0; i0 < m; i0 += kTransposeTile) {
    const size_t i1 = std::min(m, i0 + kTransposeTile);
    for (size_t j0 = 0; j0 < m; j0 += kTransposeTile) {
      const size_t j1 = std::min(m, j0 + kTransposeTile);
      for (size_t i = i0; i < i1; ++i) {
        const double s = row_scale[i];
        for (size_t j = j0; j < j1; ++j) dst[j * m + i] = src[i * m + j] * s;
      }
    }
  }
}

// -------------------------------------------------------------- density ----
// Inflated footprint of cell c at (x, y) — must mirror DensityModel's charge
// model exactly (the scalar backend is golden against it).
struct Footprint {
  double xl, xh, yl, yh, scale;
};

static Footprint footprint(const DensityGrid& g, const DensityCells& cells,
                           size_t c, double x, double y) {
  const double w = std::max(cells.w[c], g.bin_w);
  const double h = std::max(cells.h[c], g.bin_h);
  const double cx = x + 0.5 * cells.w[c];
  const double cy = y + 0.5 * cells.h[c];
  Footprint f;
  f.xl = cx - 0.5 * w;
  f.xh = cx + 0.5 * w;
  f.yl = cy - 0.5 * h;
  f.yh = cy + 0.5 * h;
  f.scale = cells.area[c] / (w * h);
  return f;
}

static void density_scatter(const DensityGrid& g, const DensityCells& cells,
                            const double* DTP_RESTRICT x,
                            const double* DTP_RESTRICT y,
                            double* DTP_RESTRICT rho) {
  const int m = g.m;
  for (size_t c = 0; c < cells.n; ++c) {
    if (!cells.movable[c] || cells.area[c] <= 0.0) continue;
    const Footprint f = footprint(g, cells, c, x[c], y[c]);
    const double xl = std::max(f.xl - g.core_xl, 0.0);
    const double xh = std::min(f.xh - g.core_xl, g.core_w);
    const double yl = std::max(f.yl - g.core_yl, 0.0);
    const double yh = std::min(f.yh - g.core_yl, g.core_h);
    if (xl >= xh || yl >= yh) continue;
    const int bx0 = std::clamp(static_cast<int>(xl / g.bin_w), 0, m - 1);
    const int bx1 = std::clamp(static_cast<int>(xh / g.bin_w), 0, m - 1);
    const int by0 = std::clamp(static_cast<int>(yl / g.bin_h), 0, m - 1);
    const int by1 = std::clamp(static_cast<int>(yh / g.bin_h), 0, m - 1);
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double ox =
          std::min(xh, (bx + 1) * g.bin_w) - std::max(xl, bx * g.bin_w);
      if (ox <= 0.0) continue;
      double* DTP_RESTRICT row = rho + static_cast<size_t>(bx) * m;
      for (int by = by0; by <= by1; ++by) {
        const double oy =
            std::min(yh, (by + 1) * g.bin_h) - std::max(yl, by * g.bin_h);
        if (oy <= 0.0) continue;
        row[by] += f.scale * ox * oy;
      }
    }
  }
}

static void density_gather(const DensityGrid& g, const DensityCells& cells,
                           const double* DTP_RESTRICT x,
                           const double* DTP_RESTRICT y,
                           const double* DTP_RESTRICT field_x,
                           const double* DTP_RESTRICT field_y, double lambda,
                           double* DTP_RESTRICT gx, double* DTP_RESTRICT gy) {
  const int m = g.m;
  for (size_t c = 0; c < cells.n; ++c) {
    if (!cells.movable[c] || cells.area[c] <= 0.0) continue;
    const Footprint f = footprint(g, cells, c, x[c], y[c]);
    const double xl = std::max(f.xl - g.core_xl, 0.0);
    const double xh = std::min(f.xh - g.core_xl, g.core_w);
    const double yl = std::max(f.yl - g.core_yl, 0.0);
    const double yh = std::min(f.yh - g.core_yl, g.core_h);
    if (xl >= xh || yl >= yh) continue;
    const int bx0 = std::clamp(static_cast<int>(xl / g.bin_w), 0, m - 1);
    const int bx1 = std::clamp(static_cast<int>(xh / g.bin_w), 0, m - 1);
    const int by0 = std::clamp(static_cast<int>(yl / g.bin_h), 0, m - 1);
    const int by1 = std::clamp(static_cast<int>(yh / g.bin_h), 0, m - 1);
    double fx = 0.0, fy = 0.0;
    for (int bx = bx0; bx <= bx1; ++bx) {
      const double ox =
          std::min(xh, (bx + 1) * g.bin_w) - std::max(xl, bx * g.bin_w);
      if (ox <= 0.0) continue;
      const double* DTP_RESTRICT frow_x = field_x + static_cast<size_t>(bx) * m;
      const double* DTP_RESTRICT frow_y = field_y + static_cast<size_t>(bx) * m;
      for (int by = by0; by <= by1; ++by) {
        const double oy =
            std::min(yh, (by + 1) * g.bin_h) - std::max(yl, by * g.bin_h);
        if (oy <= 0.0) continue;
        const double q = f.scale * ox * oy;
        fx += q * frow_x[by];
        fy += q * frow_y[by];
      }
    }
    // The force -q*grad(psi) = +q*field pulls cells from dense to sparse
    // regions; as an objective gradient it enters with the opposite sign.
    gx[c] += -lambda * fx;
    gy[c] += -lambda * fy;
  }
}

// ----------------------------------------------------------- wirelength ----
// Per-axis WA value and gradient for one net (identical math to the seed's
// wa_axis; exp sums shifted by cmax/cmin for stability).
static double wa_axis(const double* DTP_RESTRICT coords, size_t n, double gamma,
                      double* DTP_RESTRICT grads, double* DTP_RESTRICT ep,
                      double* DTP_RESTRICT em) {
  double cmax = coords[0], cmin = coords[0];
  for (size_t i = 0; i < n; ++i) {
    cmax = std::max(cmax, coords[i]);
    cmin = std::min(cmin, coords[i]);
  }
  double sp = 0.0, tp = 0.0, sm = 0.0, tm = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ep[i] = std::exp((coords[i] - cmax) / gamma);
    em[i] = std::exp(-(coords[i] - cmin) / gamma);
    sp += ep[i];
    tp += coords[i] * ep[i];
    sm += em[i];
    tm += coords[i] * em[i];
  }
  const double wa_p = tp / sp;
  const double wa_m = tm / sm;
  for (size_t i = 0; i < n; ++i) {
    const double gp = ep[i] / sp * (1.0 + (coords[i] - wa_p) / gamma);
    const double gm = em[i] / sm * (1.0 - (coords[i] - wa_m) / gamma);
    grads[i] = gp - gm;
  }
  return wa_p - wa_m;
}

// ------------------------------------------------------------------ LUT ----
// Delay + slew bilinear queries of one cell arc share the (slew_in, load)
// point; evaluating them as a pair keeps both tables' rows hot in cache.
static void lut_pair(const liberty::Lut& delay, const liberty::Lut& slew,
                     double slew_in, double load, liberty::Lut::Query& delay_q,
                     liberty::Lut::Query& slew_q) {
  delay_q = delay.lookup_grad(slew_in, load);
  slew_q = slew.lookup_grad(slew_in, load);
}

}  // namespace dtp::kernels::impl
