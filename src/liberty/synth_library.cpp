#include "liberty/synth_library.h"

#include <cmath>

namespace dtp::liberty {

double synth_delay_model(double p, double r, double ks, double knl, double slew,
                         double load) {
  return p + r * load + ks * slew + knl * slew * load;
}

double synth_slew_model(double s0, double r, double beta, double kss, double slew,
                        double load) {
  return s0 + beta * r * load + kss * slew;
}

namespace {

std::vector<double> geometric_axis(double lo, double hi, int n) {
  std::vector<double> axis(static_cast<size_t>(n));
  const double ratio = std::pow(hi / lo, 1.0 / (n - 1));
  double v = lo;
  for (int i = 0; i < n; ++i) {
    axis[static_cast<size_t>(i)] = v;
    v *= ratio;
  }
  axis.back() = hi;  // kill accumulated rounding
  return axis;
}

// Electrical parameters of one timing arc "edge" (rise or fall).
struct EdgeModel {
  double p;    // intrinsic delay, ns
  double r;    // drive resistance, kOhm
  double ks;   // slew-to-delay coefficient
  double knl;  // bilinear cross coefficient, ns / (ns*pF)
  double s0;   // intrinsic output slew, ns
  double beta; // output slew per R*load
  double kss;  // input-slew feedthrough into output slew
};

Lut tabulate_delay(const std::vector<double>& slews, const std::vector<double>& loads,
                   const EdgeModel& m) {
  std::vector<double> v;
  v.reserve(slews.size() * loads.size());
  for (double s : slews)
    for (double l : loads) v.push_back(synth_delay_model(m.p, m.r, m.ks, m.knl, s, l));
  return Lut(slews, loads, std::move(v));
}

Lut tabulate_slew(const std::vector<double>& slews, const std::vector<double>& loads,
                  const EdgeModel& m) {
  std::vector<double> v;
  v.reserve(slews.size() * loads.size());
  for (double s : slews)
    for (double l : loads) v.push_back(synth_slew_model(m.s0, m.r, m.beta, m.kss, s, l));
  return Lut(slews, loads, std::move(v));
}

// Fills the four LUTs of an arc from a base model.  Rise edges are slightly
// slower than fall edges (PMOS weaker than NMOS), the usual asymmetry.
void fill_arc_tables(TimingArc& arc, const std::vector<double>& slews,
                     const std::vector<double>& loads, EdgeModel base) {
  EdgeModel rise = base, fall = base;
  rise.p *= 1.07;
  rise.r *= 1.10;
  rise.s0 *= 1.08;
  fall.p *= 0.93;
  fall.r *= 0.92;
  fall.s0 *= 0.94;
  arc.cell_rise = tabulate_delay(slews, loads, rise);
  arc.cell_fall = tabulate_delay(slews, loads, fall);
  arc.rise_transition = tabulate_slew(slews, loads, rise);
  arc.fall_transition = tabulate_slew(slews, loads, fall);
}

struct GateSpec {
  const char* name;
  int n_inputs;
  Unateness unate;
  double drive;      // relative drive strength (scales R down, cap/width up)
  double logical_g;  // logical effort: scales input cap
  double p_base;     // intrinsic delay at X1, ns
};

}  // namespace

CellLibrary make_synthetic_library(const SynthLibraryOptions& opts) {
  CellLibrary lib;
  const auto slews = geometric_axis(opts.slew_min, opts.slew_max, opts.lut_size);
  const auto loads = geometric_axis(opts.load_min, opts.load_max, opts.lut_size);
  lib.default_slew = slews[2];

  // X1 reference electricals.
  const double kR1 = 6.0;     // kOhm drive resistance of a unit inverter
  const double kCin1 = 0.0018;  // pF input cap of a unit inverter

  const GateSpec gates[] = {
      {"INV_X1", 1, Unateness::Negative, 1.0, 1.00, 0.008},
      {"INV_X2", 1, Unateness::Negative, 2.0, 1.00, 0.008},
      {"INV_X4", 1, Unateness::Negative, 4.0, 1.00, 0.009},
      {"BUF_X1", 1, Unateness::Positive, 1.0, 1.80, 0.016},
      {"BUF_X2", 1, Unateness::Positive, 2.0, 1.80, 0.017},
      {"NAND2_X1", 2, Unateness::Negative, 1.0, 1.33, 0.010},
      {"NAND2_X2", 2, Unateness::Negative, 2.0, 1.33, 0.011},
      {"NOR2_X1", 2, Unateness::Negative, 1.0, 1.67, 0.012},
      {"AOI21_X1", 3, Unateness::Negative, 1.0, 1.70, 0.014},
      {"XOR2_X1", 2, Unateness::NonUnate, 1.0, 2.00, 0.018},
  };

  const char* input_names[] = {"A", "B", "C"};

  for (const GateSpec& g : gates) {
    LibCell cell;
    cell.name = g.name;
    cell.kind = CellKind::Combinational;
    cell.height = opts.row_height;
    // Width grows with input count and drive strength, snapped to sites.
    const double raw_w =
        opts.site_width * (1.0 + g.n_inputs) * (1.0 + 0.5 * std::log2(g.drive));
    cell.width = std::ceil(raw_w / opts.site_width) * opts.site_width;

    const double cin = kCin1 * g.logical_g * g.drive;
    for (int i = 0; i < g.n_inputs; ++i) {
      LibPin pin;
      pin.name = input_names[i];
      pin.dir = PinDir::Input;
      pin.cap = cin;
      pin.offset_x = cell.width * 0.15;
      pin.offset_y = cell.height * (0.25 + 0.5 * i / std::max(1, g.n_inputs - 1));
      if (g.n_inputs == 1) pin.offset_y = cell.height * 0.5;
      cell.pins.push_back(pin);
    }
    LibPin out;
    out.name = "Z";
    out.dir = PinDir::Output;
    out.offset_x = cell.width * 0.85;
    out.offset_y = cell.height * 0.5;
    cell.pins.push_back(out);
    const int out_idx = g.n_inputs;

    for (int i = 0; i < g.n_inputs; ++i) {
      TimingArc arc;
      arc.from_pin = i;
      arc.to_pin = out_idx;
      arc.kind = ArcKind::Combinational;
      arc.unate = g.unate;
      EdgeModel m;
      m.r = kR1 / g.drive;
      // Later inputs of a stack are slightly slower (series transistors).
      m.p = g.p_base * (1.0 + 0.15 * i);
      m.ks = 0.12;
      m.knl = 0.8;
      m.s0 = 0.006;
      m.beta = 1.9;
      m.kss = 0.10;
      fill_arc_tables(arc, slews, loads, m);
      cell.arcs.push_back(std::move(arc));
    }
    lib.add_cell(std::move(cell));
  }

  // D flip-flop: pins D (data in), CK (clock in), Q (out); CK->Q arc.
  {
    LibCell ff;
    ff.name = "DFF_X1";
    ff.kind = CellKind::Sequential;
    ff.height = opts.row_height;
    ff.width = 6.0 * opts.site_width;
    ff.setup_time = 0.030;
    ff.hold_time = 0.004;
    // Constraint LUTs (x = data slew, y = clock slew): mildly increasing in
    // data slew, with a small bilinear term so the gradient path through the
    // constraint query is genuinely 2-D.
    {
      std::vector<double> sv, hv;
      sv.reserve(slews.size() * slews.size());
      hv.reserve(slews.size() * slews.size());
      for (double ds : slews)
        for (double cs : slews) {
          sv.push_back(ff.setup_time + 0.30 * ds + 0.08 * cs + 0.15 * ds * cs);
          hv.push_back(ff.hold_time + 0.06 * ds + 0.02 * cs);
        }
      ff.setup_lut = Lut(slews, slews, std::move(sv));
      ff.hold_lut = Lut(slews, slews, std::move(hv));
    }

    LibPin d{"D", PinDir::Input, kCin1 * 1.4, false, ff.width * 0.12,
             ff.height * 0.35};
    LibPin ck{"CK", PinDir::Input, kCin1 * 1.1, true, ff.width * 0.12,
              ff.height * 0.70};
    LibPin q{"Q", PinDir::Output, 0.0, false, ff.width * 0.88, ff.height * 0.5};
    ff.pins = {d, ck, q};

    TimingArc c2q;
    c2q.from_pin = 1;  // CK
    c2q.to_pin = 2;    // Q
    c2q.kind = ArcKind::ClockToQ;
    c2q.unate = Unateness::Positive;  // rising clock edge launches both edges;
                                      // positive-unate is the usual .lib idiom
    EdgeModel m;
    m.r = kR1 / 1.5;
    m.p = 0.035;
    m.ks = 0.05;
    m.knl = 0.5;
    m.s0 = 0.007;
    m.beta = 1.9;
    m.kss = 0.04;
    fill_arc_tables(c2q, slews, loads, m);
    ff.arcs.push_back(std::move(c2q));
    lib.add_cell(std::move(ff));
  }

  lib.ensure_port_in();
  lib.ensure_port_out();
  return lib;
}

}  // namespace dtp::liberty
