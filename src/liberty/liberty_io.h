// Liberty-subset reader and writer.
//
// This repo persists cell libraries in a subset of the Liberty (.lib) format:
// `library`, `cell`, `pin` and `timing` groups, NLDM `cell_rise` /
// `cell_fall` / `rise_transition` / `fall_transition` tables with inline
// index_1/index_2/values, `direction`, `capacitance`, `clock`,
// `timing_sense`, `timing_type` and `related_pin` attributes.  Geometry and
// constraint values that real flows take from LEF and constraint LUTs are
// carried as `dtp_*` extension attributes (dtp_width, dtp_height,
// dtp_offset_x/y, dtp_setup, dtp_hold), so a library round-trips exactly:
// parse(write(lib)) == lib.
//
// The parser is a recursive-descent parser over a generic
// group/attribute/complex-attribute AST, so unknown groups and attributes are
// skipped gracefully — real Liberty files with extra content parse as long as
// the supported core is present.
#pragma once

#include <iosfwd>
#include <string>

#include "liberty/cell_library.h"

namespace dtp::liberty {

// Serializes the library (including IO-pad masters) to Liberty-subset text.
void write_liberty(const CellLibrary& lib, std::ostream& out,
                   const std::string& library_name = "dtp_synth");

// Parses Liberty-subset text. Throws std::runtime_error with a line number on
// malformed input.
CellLibrary parse_liberty(std::istream& in);

// File-path conveniences.
void write_liberty_file(const CellLibrary& lib, const std::string& path,
                        const std::string& library_name = "dtp_synth");
CellLibrary parse_liberty_file(const std::string& path);

}  // namespace dtp::liberty
