#include "liberty/liberty_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dtp::liberty {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------
namespace {

void write_axis(std::ostream& out, const char* name, std::span<const double> axis,
                const char* indent) {
  out << indent << name << " (\"";
  for (size_t i = 0; i < axis.size(); ++i) {
    if (i) out << ", ";
    out << std::setprecision(10) << axis[i];
  }
  out << "\");\n";
}

void write_lut(std::ostream& out, const char* group, const Lut& lut,
               const char* indent) {
  std::string inner = std::string(indent) + "  ";
  out << indent << group << " () {\n";
  write_axis(out, "index_1", lut.x_axis(), inner.c_str());
  write_axis(out, "index_2", lut.y_axis(), inner.c_str());
  out << inner << "values (";
  for (size_t i = 0; i < lut.nx(); ++i) {
    if (i) out << ", \\\n" << inner << "        ";
    out << "\"";
    for (size_t j = 0; j < lut.ny(); ++j) {
      if (j) out << ", ";
      out << std::setprecision(10) << lut.value_at(i, j);
    }
    out << "\"";
  }
  out << ");\n";
  out << indent << "}\n";
}

const char* unate_name(Unateness u) {
  switch (u) {
    case Unateness::Positive: return "positive_unate";
    case Unateness::Negative: return "negative_unate";
    case Unateness::NonUnate: return "non_unate";
  }
  return "non_unate";
}

}  // namespace

void write_liberty(const CellLibrary& lib, std::ostream& out,
                   const std::string& library_name) {
  out << "library (" << library_name << ") {\n";
  out << "  time_unit : \"1ns\";\n";
  out << "  capacitive_load_unit (1, pf);\n";
  out << "  dtp_default_slew : " << std::setprecision(12) << lib.default_slew
      << ";\n";
  for (size_t c = 0; c < lib.size(); ++c) {
    const LibCell& cell = lib.cell(static_cast<int>(c));
    out << "  cell (" << cell.name << ") {\n";
    out << "    area : " << cell.width * cell.height << ";\n";
    out << "    dtp_width : " << cell.width << ";\n";
    out << "    dtp_height : " << cell.height << ";\n";
    switch (cell.kind) {
      case CellKind::Sequential: out << "    dtp_kind : sequential;\n"; break;
      case CellKind::PortIn: out << "    dtp_kind : port_in;\n"; break;
      case CellKind::PortOut: out << "    dtp_kind : port_out;\n"; break;
      case CellKind::Combinational: break;  // default, omitted
    }
    if (cell.kind == CellKind::Sequential) {
      out << "    dtp_setup : " << cell.setup_time << ";\n";
      out << "    dtp_hold : " << cell.hold_time << ";\n";
      if (cell.setup_lut.valid())
        write_lut(out, "dtp_setup_lut", cell.setup_lut, "    ");
      if (cell.hold_lut.valid())
        write_lut(out, "dtp_hold_lut", cell.hold_lut, "    ");
    }
    for (size_t p = 0; p < cell.pins.size(); ++p) {
      const LibPin& pin = cell.pins[p];
      out << "    pin (" << pin.name << ") {\n";
      out << "      direction : " << (pin.dir == PinDir::Input ? "input" : "output")
          << ";\n";
      if (pin.dir == PinDir::Input)
        out << "      capacitance : " << std::setprecision(10) << pin.cap << ";\n";
      if (pin.is_clock) out << "      clock : true;\n";
      out << "      dtp_offset_x : " << pin.offset_x << ";\n";
      out << "      dtp_offset_y : " << pin.offset_y << ";\n";
      // Liberty puts timing groups on the arc's *output* pin.
      for (const TimingArc& arc : cell.arcs) {
        if (arc.to_pin != static_cast<int>(p)) continue;
        out << "      timing () {\n";
        out << "        related_pin : \"" << cell.pins[static_cast<size_t>(arc.from_pin)].name
            << "\";\n";
        out << "        timing_sense : " << unate_name(arc.unate) << ";\n";
        if (arc.kind == ArcKind::ClockToQ)
          out << "        timing_type : rising_edge;\n";
        write_lut(out, "cell_rise", arc.cell_rise, "        ");
        write_lut(out, "cell_fall", arc.cell_fall, "        ");
        write_lut(out, "rise_transition", arc.rise_transition, "        ");
        write_lut(out, "fall_transition", arc.fall_transition, "        ");
        out << "      }\n";
      }
      out << "    }\n";
    }
    out << "  }\n";
  }
  out << "}\n";
}

// ---------------------------------------------------------------------------
// Parser: tokenizer + generic group AST + interpretation.
// ---------------------------------------------------------------------------
namespace {

struct Token {
  enum Kind { Ident, Str, Punct, End } kind = End;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) {
    std::ostringstream ss;
    ss << in.rdbuf();
    src_ = ss.str();
  }

  Token next() {
    skip_ws_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) {
      t.kind = Token::End;
      return t;
    }
    const char c = src_[pos_];
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;  // line splice
        if (src_[pos_] == '\n') ++line_;
        s += src_[pos_++];
      }
      if (pos_ >= src_.size()) fail("unterminated string");
      ++pos_;
      t.kind = Token::Str;
      t.text = std::move(s);
      return t;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
        c == '-' || c == '+') {
      size_t start = pos_;
      while (pos_ < src_.size()) {
        const char d = src_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' || d == '.' ||
            d == '-' || d == '+')
          ++pos_;
        else
          break;
      }
      t.kind = Token::Ident;
      t.text = src_.substr(start, pos_ - start);
      return t;
    }
    t.kind = Token::Punct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("liberty parse error at line " + std::to_string(line_) +
                             ": " + msg);
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, src_.size());
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// Generic Liberty AST node: either a simple attribute `name : value;`, a
// complex attribute `name (a, b, ...);`, or a group `name (args) { ... }`.
struct Group {
  std::string type;                 // e.g. "cell"
  std::vector<std::string> args;    // e.g. {"INV_X1"}
  std::vector<std::pair<std::string, std::string>> attrs;        // simple
  std::vector<std::pair<std::string, std::vector<std::string>>> cattrs;  // complex
  std::vector<std::unique_ptr<Group>> groups;

  const std::string* attr(const std::string& name) const {
    for (const auto& [k, v] : attrs)
      if (k == name) return &v;
    return nullptr;
  }
  double attr_double(const std::string& name, double fallback) const {
    const std::string* s = attr(name);
    if (!s) return fallback;
    try {
      return std::stod(*s);
    } catch (const std::exception&) {
      throw std::runtime_error("malformed numeric attribute '" + name +
                               "': '" + *s + "'");
    }
  }
};

class Parser {
 public:
  explicit Parser(std::istream& in) : lex_(in) { advance(); }

  std::unique_ptr<Group> parse_top() {
    auto g = parse_group();
    if (g->type != "library") lex_.fail("expected top-level 'library' group");
    return g;
  }

 private:
  void advance() { cur_ = lex_.next(); }

  void expect_punct(const char* p) {
    if (cur_.kind != Token::Punct || cur_.text != p)
      lex_.fail(std::string("expected '") + p + "', got '" + cur_.text + "'");
    advance();
  }

  std::unique_ptr<Group> parse_group() {
    auto g = std::make_unique<Group>();
    if (cur_.kind != Token::Ident) lex_.fail("expected group name");
    g->type = cur_.text;
    advance();
    expect_punct("(");
    while (!(cur_.kind == Token::Punct && cur_.text == ")")) {
      if (cur_.kind == Token::End) lex_.fail("unexpected EOF in group args");
      if (cur_.kind == Token::Punct && cur_.text == ",") {
        advance();
        continue;
      }
      g->args.push_back(cur_.text);
      advance();
    }
    advance();  // ')'
    expect_punct("{");
    parse_body(*g, 0);
    return g;
  }

  // Real Liberty nests a handful of levels (library/cell/pin/timing/table);
  // anything deeper is malformed or hostile input, and the recursion must be
  // refused with a diagnostic before it can overflow the stack.
  static constexpr int kMaxGroupDepth = 64;

  void parse_body(Group& g, int depth) {
    if (depth > kMaxGroupDepth)
      lex_.fail("group nesting deeper than " +
                std::to_string(kMaxGroupDepth) + " levels");
    for (;;) {
      if (cur_.kind == Token::Punct && cur_.text == "}") {
        advance();
        // Optional trailing ';' after a group close.
        if (cur_.kind == Token::Punct && cur_.text == ";") advance();
        return;
      }
      if (cur_.kind == Token::End) lex_.fail("unexpected EOF in group body");
      if (cur_.kind != Token::Ident) lex_.fail("expected statement");
      const std::string name = cur_.text;
      advance();
      if (cur_.kind == Token::Punct && cur_.text == ":") {
        advance();
        std::string value = cur_.text;
        advance();
        // Liberty allows unquoted multi-token values; collect until ';'.
        while (!(cur_.kind == Token::Punct && cur_.text == ";")) {
          if (cur_.kind == Token::End) lex_.fail("unexpected EOF in attribute");
          value += " " + cur_.text;
          advance();
        }
        advance();  // ';'
        g.attrs.emplace_back(name, value);
      } else if (cur_.kind == Token::Punct && cur_.text == "(") {
        // Complex attribute or nested group: disambiguate after ')'.
        advance();
        std::vector<std::string> args;
        while (!(cur_.kind == Token::Punct && cur_.text == ")")) {
          if (cur_.kind == Token::End) lex_.fail("unexpected EOF in arguments");
          if (cur_.kind == Token::Punct && cur_.text == ",") {
            advance();
            continue;
          }
          args.push_back(cur_.text);
          advance();
        }
        advance();  // ')'
        if (cur_.kind == Token::Punct && cur_.text == "{") {
          advance();
          auto sub = std::make_unique<Group>();
          sub->type = name;
          sub->args = std::move(args);
          parse_body(*sub, depth + 1);
          g.groups.push_back(std::move(sub));
        } else {
          expect_punct(";");
          g.cattrs.emplace_back(name, std::move(args));
        }
      } else {
        lex_.fail("expected ':' or '(' after identifier '" + name + "'");
      }
    }
  }

  Lexer lex_;
  Token cur_;
};

std::vector<double> parse_number_list(const std::string& s) {
  std::vector<double> out;
  std::string token;
  std::istringstream is(s);
  while (std::getline(is, token, ',')) {
    // strip whitespace
    size_t b = token.find_first_not_of(" \t\n\r");
    if (b == std::string::npos) continue;
    size_t e = token.find_last_not_of(" \t\n\r");
    // std::stod throws logic_error-family exceptions; re-map everything to
    // the parser's runtime_error contract so hostile input cannot escape it.
    try {
      out.push_back(std::stod(token.substr(b, e - b + 1)));
    } catch (const std::exception&) {
      throw std::runtime_error("malformed number in list: '" + token + "'");
    }
  }
  return out;
}

Lut parse_lut_group(const Group& g) {
  std::vector<double> xs{0.0}, ys{0.0}, vals;
  for (const auto& [name, args] : g.cattrs) {
    if (name == "index_1" && !args.empty()) xs = parse_number_list(args[0]);
    if (name == "index_2" && !args.empty()) ys = parse_number_list(args[0]);
    if (name == "values") {
      vals.clear();
      for (const std::string& row : args) {
        auto nums = parse_number_list(row);
        vals.insert(vals.end(), nums.begin(), nums.end());
      }
    }
  }
  if (vals.empty()) vals.assign(xs.size() * ys.size(), 0.0);
  // The Lut constructor asserts these invariants (they hold by construction
  // everywhere else); file input must reject them as parse errors instead.
  if (xs.empty() || ys.empty())
    throw std::runtime_error("lut with an empty index axis");
  if (vals.size() != xs.size() * ys.size())
    throw std::runtime_error(
        "lut value count " + std::to_string(vals.size()) + " != " +
        std::to_string(xs.size()) + "x" + std::to_string(ys.size()));
  if (!std::is_sorted(xs.begin(), xs.end()) ||
      !std::is_sorted(ys.begin(), ys.end()))
    throw std::runtime_error("lut index axes must be ascending");
  return Lut(std::move(xs), std::move(ys), std::move(vals));
}

Unateness parse_unate(const std::string& s) {
  if (s == "positive_unate") return Unateness::Positive;
  if (s == "negative_unate") return Unateness::Negative;
  return Unateness::NonUnate;
}

}  // namespace

CellLibrary parse_liberty(std::istream& in) {
  Parser parser(in);
  auto top = parser.parse_top();

  CellLibrary lib;
  lib.default_slew = top->attr_double("dtp_default_slew", lib.default_slew);

  for (const auto& gc : top->groups) {
    if (gc->type != "cell") continue;
    if (gc->args.empty()) throw std::runtime_error("cell group without a name");
    LibCell cell;
    cell.name = gc->args[0];
    cell.width = gc->attr_double("dtp_width", 0.0);
    cell.height = gc->attr_double("dtp_height", 0.0);
    cell.setup_time = gc->attr_double("dtp_setup", 0.0);
    cell.hold_time = gc->attr_double("dtp_hold", 0.0);
    if (const std::string* kind = gc->attr("dtp_kind")) {
      if (*kind == "sequential") cell.kind = CellKind::Sequential;
      else if (*kind == "port_in") cell.kind = CellKind::PortIn;
      else if (*kind == "port_out") cell.kind = CellKind::PortOut;
    }
    for (const auto& gl : gc->groups) {
      if (gl->type == "dtp_setup_lut") cell.setup_lut = parse_lut_group(*gl);
      else if (gl->type == "dtp_hold_lut") cell.hold_lut = parse_lut_group(*gl);
    }

    // First pass: pins (so arc endpoints can be resolved by name).
    for (const auto& gp : gc->groups) {
      if (gp->type != "pin") continue;
      if (gp->args.empty()) throw std::runtime_error("pin group without a name");
      LibPin pin;
      pin.name = gp->args[0];
      if (const std::string* dir = gp->attr("direction"))
        pin.dir = (*dir == "output") ? PinDir::Output : PinDir::Input;
      pin.cap = gp->attr_double("capacitance", 0.0);
      if (const std::string* clk = gp->attr("clock")) pin.is_clock = (*clk == "true");
      pin.offset_x = gp->attr_double("dtp_offset_x", 0.0);
      pin.offset_y = gp->attr_double("dtp_offset_y", 0.0);
      cell.pins.push_back(std::move(pin));
    }

    // Second pass: timing groups hanging off output pins.
    for (const auto& gp : gc->groups) {
      if (gp->type != "pin") continue;
      const int to_pin = cell.find_pin(gp->args[0]);
      for (const auto& gt : gp->groups) {
        if (gt->type != "timing") continue;
        TimingArc arc;
        arc.to_pin = to_pin;
        if (const std::string* rp = gt->attr("related_pin")) {
          arc.from_pin = cell.find_pin(*rp);
          if (arc.from_pin < 0)
            throw std::runtime_error("timing related_pin '" + *rp +
                                     "' not found in cell " + cell.name);
        } else {
          throw std::runtime_error("timing group without related_pin in cell " +
                                   cell.name);
        }
        if (const std::string* sense = gt->attr("timing_sense"))
          arc.unate = parse_unate(*sense);
        if (const std::string* type = gt->attr("timing_type")) {
          if (*type == "rising_edge" || *type == "falling_edge")
            arc.kind = ArcKind::ClockToQ;
        }
        for (const auto& glut : gt->groups) {
          if (glut->type == "cell_rise") arc.cell_rise = parse_lut_group(*glut);
          else if (glut->type == "cell_fall") arc.cell_fall = parse_lut_group(*glut);
          else if (glut->type == "rise_transition")
            arc.rise_transition = parse_lut_group(*glut);
          else if (glut->type == "fall_transition")
            arc.fall_transition = parse_lut_group(*glut);
        }
        cell.arcs.push_back(std::move(arc));
      }
    }
    lib.add_cell(std::move(cell));
  }
  return lib;
}

void write_liberty_file(const CellLibrary& lib, const std::string& path,
                        const std::string& library_name) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open " + path + " for writing");
  write_liberty(lib, out, library_name);
}

CellLibrary parse_liberty_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  return parse_liberty(in);
}

}  // namespace dtp::liberty
