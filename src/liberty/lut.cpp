#include "liberty/lut.h"

#include <algorithm>

#include "common/assert.h"

namespace dtp::liberty {

Lut::Lut(std::vector<double> xs, std::vector<double> ys, std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  DTP_ASSERT_MSG(!xs_.empty() && !ys_.empty(), "LUT axes must be non-empty");
  DTP_ASSERT_MSG(values_.size() == xs_.size() * ys_.size(),
                 "LUT value count must be nx*ny");
  DTP_ASSERT_MSG(std::is_sorted(xs_.begin(), xs_.end()),
                 "LUT x axis must be ascending");
  DTP_ASSERT_MSG(std::is_sorted(ys_.begin(), ys_.end()),
                 "LUT y axis must be ascending");
}

Lut Lut::constant(double c) { return Lut({0.0}, {0.0}, {c}); }

size_t Lut::lower_index(std::span<const double> axis, double q) {
  if (axis.size() <= 1) return 0;
  // First breakpoint strictly greater than q, then step back to the interval
  // start; clamp to [0, n-2] so out-of-range queries extrapolate on the edge
  // interval.
  const auto it = std::upper_bound(axis.begin(), axis.end(), q);
  size_t i = static_cast<size_t>(it - axis.begin());
  if (i > 0) --i;
  if (i > axis.size() - 2) i = axis.size() - 2;
  return i;
}

double Lut::lookup(double x, double y) const { return lookup_grad(x, y).value; }

Lut::Query Lut::lookup_grad(double x, double y) const {
  Query q;
  const size_t nx = xs_.size(), ny = ys_.size();
  if (nx == 1 && ny == 1) {
    q.value = values_[0];
    return q;
  }
  if (nx == 1) {
    // 1-D interpolation along y.
    const size_t j = lower_index(ys_, y);
    const double t = (y - ys_[j]) / (ys_[j + 1] - ys_[j]);
    const double v0 = values_[j], v1 = values_[j + 1];
    q.value = v0 + t * (v1 - v0);
    q.d_dy = (v1 - v0) / (ys_[j + 1] - ys_[j]);
    return q;
  }
  if (ny == 1) {
    const size_t i = lower_index(xs_, x);
    const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
    const double v0 = values_[i], v1 = values_[i + 1];
    q.value = v0 + t * (v1 - v0);
    q.d_dx = (v1 - v0) / (xs_[i + 1] - xs_[i]);
    return q;
  }
  const size_t i = lower_index(xs_, x);
  const size_t j = lower_index(ys_, y);
  const double x0 = xs_[i], x1 = xs_[i + 1];
  const double y0 = ys_[j], y1 = ys_[j + 1];
  const double v00 = value_at(i, j), v01 = value_at(i, j + 1);
  const double v10 = value_at(i + 1, j), v11 = value_at(i + 1, j + 1);
  const double tx = (x - x0) / (x1 - x0);
  const double ty = (y - y0) / (y1 - y0);
  // Bilinear surface v(tx, ty); also valid as extrapolation for tx/ty outside
  // [0, 1] (the surface extends linearly, matching Liberty semantics).
  const double a = v00;
  const double b = v10 - v00;
  const double c = v01 - v00;
  const double d = v11 - v10 - v01 + v00;
  q.value = a + b * tx + c * ty + d * tx * ty;
  q.d_dx = (b + d * ty) / (x1 - x0);
  q.d_dy = (c + d * tx) / (y1 - y0);
  return q;
}

}  // namespace dtp::liberty
