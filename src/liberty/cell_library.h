// Cell library: the set of standard-cell masters a netlist instantiates.
//
// Widths/heights are in microns; time in nanoseconds; capacitance in
// picofarads (matching the synthetic Liberty files this repo emits).  Two
// special master kinds model primary IOs so the netlist, placer and timer can
// treat ports uniformly as fixed zero-area cells.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "liberty/timing_arc.h"

namespace dtp::liberty {

enum class PinDir : uint8_t { Input, Output };

struct LibPin {
  std::string name;
  PinDir dir = PinDir::Input;
  double cap = 0.0;  // input pin capacitance (pF); 0 for outputs
  bool is_clock = false;
  // Pin offset from the cell origin (microns); pin location = cell pos + offset.
  double offset_x = 0.0;
  double offset_y = 0.0;
};

enum class CellKind : uint8_t {
  Combinational,
  Sequential,  // has ClockToQ arcs and setup/hold constraints on data pins
  PortIn,      // primary input pad: one output pin, no arcs
  PortOut,     // primary output pad: one input pin, no arcs
};

struct LibCell {
  std::string name;
  CellKind kind = CellKind::Combinational;
  double width = 0.0;
  double height = 0.0;
  std::vector<LibPin> pins;
  std::vector<TimingArc> arcs;
  // Constraint values for sequential cells.  When the constraint LUTs are
  // valid they take precedence and are queried at (data slew, clock slew),
  // NLDM-style; the scalars remain as the fallback model.
  double setup_time = 0.0;
  double hold_time = 0.0;
  Lut setup_lut;  // (x = data slew, y = clock slew) -> setup requirement
  Lut hold_lut;

  int find_pin(const std::string& pin_name) const {
    for (size_t i = 0; i < pins.size(); ++i)
      if (pins[i].name == pin_name) return static_cast<int>(i);
    return -1;
  }
  bool is_port() const { return kind == CellKind::PortIn || kind == CellKind::PortOut; }
};

class CellLibrary {
 public:
  CellLibrary() = default;

  // Registers a master; names must be unique.
  int add_cell(LibCell cell) {
    DTP_ASSERT_MSG(name_to_id_.find(cell.name) == name_to_id_.end(),
                   "duplicate lib cell name");
    const int id = static_cast<int>(cells_.size());
    name_to_id_[cell.name] = id;
    cells_.push_back(std::move(cell));
    return id;
  }

  int find_cell(const std::string& name) const {
    const auto it = name_to_id_.find(name);
    return it == name_to_id_.end() ? -1 : it->second;
  }

  const LibCell& cell(int id) const { return cells_.at(static_cast<size_t>(id)); }
  LibCell& cell(int id) { return cells_.at(static_cast<size_t>(id)); }
  size_t size() const { return cells_.size(); }

  // Lazily creates the IO-pad masters and returns their ids.  The input pad's
  // single pin is an output (it drives the net); vice versa for output pads.
  int ensure_port_in() {
    int id = find_cell(kPortInName);
    if (id >= 0) return id;
    LibCell pad;
    pad.name = kPortInName;
    pad.kind = CellKind::PortIn;
    pad.pins.push_back({"PAD", PinDir::Output, 0.0, false, 0.0, 0.0});
    return add_cell(std::move(pad));
  }
  int ensure_port_out() {
    int id = find_cell(kPortOutName);
    if (id >= 0) return id;
    LibCell pad;
    pad.name = kPortOutName;
    pad.kind = CellKind::PortOut;
    pad.pins.push_back({"PAD", PinDir::Input, 0.0, false, 0.0, 0.0});
    return add_cell(std::move(pad));
  }

  // Library-wide default slew axis (used when generating synthetic tables and
  // as the clock-slew default).
  double default_slew = 0.02;

  static constexpr const char* kPortInName = "__PORT_IN__";
  static constexpr const char* kPortOutName = "__PORT_OUT__";

 private:
  std::vector<LibCell> cells_;
  std::unordered_map<std::string, int> name_to_id_;
};

}  // namespace dtp::liberty
