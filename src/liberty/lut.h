// Non-linear delay model (NLDM) look-up table with differentiable queries.
//
// A Lut is an Nx x Ny matrix of values v(i,j) with axis breakpoints
// x_0..x_{Nx-1} (input slew) and y_0..y_{Ny-1} (output load), per the Liberty
// NLDM convention (index_1 = input transition, index_2 = total output net
// capacitance).  A query at (x, y) bilinearly interpolates inside the
// surrounding 2x2 cell and linearly extrapolates outside the table, exactly as
// commercial STA tools do.
//
// The paper's cell-arc backward pass (Eq. 12, Fig. 6) needs d(value)/dx and
// d(value)/dy of the query.  Because bilinear interpolation is piecewise
// differentiable, those are the slopes of the interpolating surface within the
// selected cell; lookup_grad() returns them together with the value.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dtp::liberty {

class Lut {
 public:
  Lut() = default;

  // `values` is row-major over x: values[i * ny + j] = v(x_i, y_j).
  Lut(std::vector<double> xs, std::vector<double> ys, std::vector<double> values);

  // Constant table (0-dimensional): every query returns `c` with zero gradient.
  static Lut constant(double c);

  size_t nx() const { return xs_.size(); }
  size_t ny() const { return ys_.size(); }
  std::span<const double> x_axis() const { return xs_; }
  std::span<const double> y_axis() const { return ys_; }
  std::span<const double> values() const { return values_; }
  double value_at(size_t i, size_t j) const { return values_[i * ys_.size() + j]; }

  bool is_constant() const { return xs_.size() <= 1 && ys_.size() <= 1; }
  // False for a default-constructed (empty) table; queries require valid().
  bool valid() const { return !values_.empty(); }

  // Interpolated/extrapolated query.
  double lookup(double x, double y) const;

  struct Query {
    double value = 0.0;
    double d_dx = 0.0;  // d(value)/d(input slew)
    double d_dy = 0.0;  // d(value)/d(output load)
  };
  Query lookup_grad(double x, double y) const;

 private:
  // Index of the lower breakpoint of the interpolation interval for query q on
  // `axis` (clamped so extrapolation reuses the edge interval slope).
  static size_t lower_index(std::span<const double> axis, double q);

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> values_;
};

}  // namespace dtp::liberty
