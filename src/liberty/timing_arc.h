// Library timing arcs: the cell-internal delay edges of the STA graph.
//
// A combinational or clock-to-Q arc carries four NLDM LUTs (cell_rise,
// cell_fall, rise_transition, fall_transition) indexed by (input slew, output
// load).  Unateness decides which input transition drives which output
// transition: a positive-unate arc maps rise->rise / fall->fall, a
// negative-unate arc maps fall->rise / rise->fall, and a non-unate arc maps
// both (the worst is taken, smoothly in the differentiable timer).
//
// Setup/hold constraint arcs are modelled with constant values (a documented
// simplification of the constraint LUTs; see DESIGN.md §1) and live on the
// LibCell as setup_time/hold_time rather than as arcs.
#pragma once

#include <cstdint>

#include "liberty/lut.h"

namespace dtp::liberty {

enum class ArcKind : uint8_t {
  Combinational,  // input pin -> output pin through logic
  ClockToQ,       // clock pin -> output pin of a sequential cell
};

enum class Unateness : uint8_t { Positive, Negative, NonUnate };

struct TimingArc {
  int from_pin = -1;  // lib-pin index within the owning LibCell
  int to_pin = -1;    // lib-pin index within the owning LibCell
  ArcKind kind = ArcKind::Combinational;
  Unateness unate = Unateness::Negative;

  Lut cell_rise;        // delay to an output *rise*
  Lut cell_fall;        // delay to an output *fall*
  Lut rise_transition;  // output slew of a rise
  Lut fall_transition;  // output slew of a fall
};

}  // namespace dtp::liberty
