// Synthetic standard-cell library generator.
//
// Stands in for a PDK's Liberty file (DESIGN.md §1): produces a small library
// of combinational cells at several drive strengths plus a D flip-flop, with
// 7x7 NLDM LUTs tabulated from a logical-effort-style analytic model
//
//     delay(slew, load) = P + R*load + ks*slew + knl*slew*load
//     slew (slew, load) = s0 + beta*R*load + kss*slew
//
// The bilinear cross term `knl*slew*load` guarantees the tables are *not*
// separable, so bilinear interpolation and its gradient (paper Fig. 6) are
// genuinely exercised rather than degenerating to two 1-D lookups.
//
// Units: ns, pF, kOhm (kOhm * pF = ns), microns.
#pragma once

#include "liberty/cell_library.h"

namespace dtp::liberty {

struct SynthLibraryOptions {
  int lut_size = 7;              // NLDM table dimension (lut_size x lut_size)
  double slew_min = 0.002;       // ns, first slew breakpoint
  double slew_max = 0.640;       // ns, last slew breakpoint (geometric axis)
  double load_min = 0.0005;      // pF
  double load_max = 0.2560;      // pF
  double row_height = 2.0;       // microns, all cells share one row height
  double site_width = 0.5;       // microns
};

// Builds the default synthetic library:
//   INV_X1/X2/X4, BUF_X1/X2, NAND2_X1/X2, NOR2_X1, AOI21_X1, XOR2_X1 (non-unate),
//   DFF_X1 (sequential), plus the IO-pad masters.
CellLibrary make_synthetic_library(const SynthLibraryOptions& opts = {});

// The analytic model behind the tables, exposed so tests can verify that LUT
// interpolation reproduces it exactly at breakpoints and closely in between.
double synth_delay_model(double p, double r, double ks, double knl, double slew,
                         double load);
double synth_slew_model(double s0, double r, double beta, double kss, double slew,
                        double load);

}  // namespace dtp::liberty
