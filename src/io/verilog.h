// Structural Verilog subset writer and reader for gate-level netlists.
//
// The ICCAD 2015 suite ships its netlists as structural Verilog; this module
// supports the same shape:
//
//   module <name> (port, port, ...);
//     input  a, b;
//     output y;
//     wire   n1, n2;
//     NAND2_X1 u1 ( .A(a), .B(n1), .Z(n2) );
//   endmodule
//
// On read, each input/output port becomes an IO-pad cell (PortIn/PortOut)
// named after the port and connected to the like-named net, matching how the
// rest of this repo models primary IOs.  Masters are resolved against the
// provided CellLibrary; named port connections only (positional connections
// are rejected).  No behavioural constructs, buses, or assigns.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace dtp::io {

void write_verilog(const netlist::Design& design, std::ostream& out);
void write_verilog_file(const netlist::Design& design, const std::string& path);

// Parses a module into a fresh Design (netlist only; constraints/floorplan
// keep defaults and positions are zero).  Throws on malformed input.
netlist::Design read_verilog(const liberty::CellLibrary& lib, std::istream& in);
netlist::Design read_verilog_file(const liberty::CellLibrary& lib,
                                  const std::string& path);

}  // namespace dtp::io
