#include "io/sdc.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dtp::io {

namespace {

// Splits one logical SDC line into tokens, handling [get_ports name] and
// {braced lists} by flattening the bracket tokens away.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string tok;
  for (char ch : line) {
    if (ch == '[' || ch == ']' || ch == '{' || ch == '}') ch = ' ';
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (!tok.empty()) {
        out.push_back(tok);
        tok.clear();
      }
    } else {
      tok += ch;
    }
  }
  if (!tok.empty()) out.push_back(tok);
  return out;
}

// Extracts the port names following a get_ports token; empty if none.
std::vector<std::string> ports_of(const std::vector<std::string>& toks) {
  std::vector<std::string> ports;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i] == "get_ports") {
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].front() == '-') break;
        ports.push_back(toks[j]);
      }
    }
  }
  return ports;
}

// First bare numeric token after the command name (skipping -flag values of
// named flags we know carry non-numeric arguments).
bool first_number(const std::vector<std::string>& toks, size_t start, double* out) {
  for (size_t i = start; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    if (t == "-name" || t == "-clock") {
      ++i;  // skip the flag's argument
      continue;
    }
    if (t.front() == '-' && t.size() > 1 &&
        !std::isdigit(static_cast<unsigned char>(t[1])) && t[1] != '.')
      continue;
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end && *end == '\0') {
      *out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

SdcParseResult read_sdc(std::istream& in, netlist::Constraints& con) {
  SdcParseResult result;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];
    double value = 0.0;
    const auto ports = ports_of(toks);

    auto apply = [&](double fallback_slot_is_unused,
                     std::unordered_map<std::string, double>& overrides,
                     double& fallback) {
      (void)fallback_slot_is_unused;
      if (ports.empty())
        fallback = value;
      else
        for (const std::string& p : ports) overrides[p] = value;
    };

    if (cmd == "create_clock") {
      if (!first_number(toks, 1, &value))
        throw std::runtime_error("create_clock without -period value");
      // -period is a named flag; first_number finds its argument.
      con.clock_period = value;
      ++result.commands;
    } else if (cmd == "set_input_delay") {
      if (!first_number(toks, 1, &value))
        throw std::runtime_error("set_input_delay without value");
      apply(0, con.input_delay_override, con.input_delay);
      ++result.commands;
    } else if (cmd == "set_output_delay") {
      if (!first_number(toks, 1, &value))
        throw std::runtime_error("set_output_delay without value");
      apply(0, con.output_delay_override, con.output_delay);
      ++result.commands;
    } else if (cmd == "set_input_transition") {
      if (!first_number(toks, 1, &value))
        throw std::runtime_error("set_input_transition without value");
      apply(0, con.input_slew_override, con.input_slew);
      ++result.commands;
    } else if (cmd == "set_load") {
      if (!first_number(toks, 1, &value))
        throw std::runtime_error("set_load without value");
      apply(0, con.output_load_override, con.output_load);
      ++result.commands;
    } else if (cmd == "set_wire_res") {
      if (first_number(toks, 1, &value)) con.wire_res = value;
      ++result.commands;
    } else if (cmd == "set_wire_cap") {
      if (first_number(toks, 1, &value)) con.wire_cap = value;
      ++result.commands;
    } else {
      ++result.skipped;
    }
  }
  return result;
}

SdcParseResult read_sdc_file(const std::string& path, netlist::Constraints& con) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  return read_sdc(in, con);
}

void write_sdc(const netlist::Constraints& con, std::ostream& out) {
  out << "create_clock -period " << con.clock_period << " -name clk [get_ports clk]\n";
  out << "set_input_delay " << con.input_delay << "\n";
  out << "set_output_delay " << con.output_delay << "\n";
  out << "set_input_transition " << con.input_slew << "\n";
  out << "set_load " << con.output_load << "\n";
  out << "set_wire_res " << con.wire_res << "\n";
  out << "set_wire_cap " << con.wire_cap << "\n";
  for (const auto& [port, v] : con.input_delay_override)
    out << "set_input_delay " << v << " [get_ports " << port << "]\n";
  for (const auto& [port, v] : con.output_delay_override)
    out << "set_output_delay " << v << " [get_ports " << port << "]\n";
  for (const auto& [port, v] : con.input_slew_override)
    out << "set_input_transition " << v << " [get_ports " << port << "]\n";
  for (const auto& [port, v] : con.output_load_override)
    out << "set_load " << v << " [get_ports " << port << "]\n";
}

void write_sdc_file(const netlist::Constraints& con, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open " + path + " for writing");
  write_sdc(con, out);
}

}  // namespace dtp::io
