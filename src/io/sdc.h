// SDC-subset constraint reader/writer.
//
// Supported commands (the ones a placement-stage timer consumes):
//   create_clock -period <ns> [-name <n>] [get_ports <p>]
//   set_input_delay <ns> [get_ports <p>]        (-clock ignored)
//   set_output_delay <ns> [get_ports <p>]
//   set_input_transition <ns> [get_ports <p>]
//   set_load <pF> [get_ports <p>]
//   set_wire_res <kohm/um>        (dtp extension)
//   set_wire_cap <pF/um>          (dtp extension)
//
// A bare value without get_ports sets the design default.  Unknown commands
// are skipped with a warning count so real SDC files degrade gracefully.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace dtp::io {

struct SdcParseResult {
  size_t commands = 0;
  size_t skipped = 0;  // unrecognized commands
};

SdcParseResult read_sdc(std::istream& in, netlist::Constraints& constraints);
SdcParseResult read_sdc_file(const std::string& path,
                             netlist::Constraints& constraints);

void write_sdc(const netlist::Constraints& constraints, std::ostream& out);
void write_sdc_file(const netlist::Constraints& constraints,
                    const std::string& path);

}  // namespace dtp::io
