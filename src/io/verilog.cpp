#include "io/verilog.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dtp::io {

using netlist::CellId;
using netlist::NetId;

void write_verilog(const netlist::Design& design, std::ostream& out) {
  const netlist::Netlist& nl = design.netlist;

  // Ports: pad cells. The port name doubles as the external net name.
  std::vector<std::string> inputs, outputs;
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (!nl.cell_is_port(id)) continue;
    if (nl.lib_cell_of(id).kind == liberty::CellKind::PortIn)
      inputs.push_back(nl.cell(id).name);
    else
      outputs.push_back(nl.cell(id).name);
  }

  out << "module " << design.name << " (";
  bool first = true;
  for (const auto& p : inputs) {
    out << (first ? "" : ", ") << p;
    first = false;
  }
  for (const auto& p : outputs) {
    out << (first ? "" : ", ") << p;
    first = false;
  }
  out << ");\n";
  for (const auto& p : inputs) out << "  input " << p << ";\n";
  for (const auto& p : outputs) out << "  output " << p << ";\n";

  // Internal nets: every net not identical to a port name.  Pad-attached
  // nets are emitted under their own (net) names; ports alias them via
  // assign-free pad instances, so we simply declare all nets as wires except
  // ones named exactly like a port.
  for (size_t n = 0; n < nl.num_nets(); ++n)
    out << "  wire " << nl.net(static_cast<NetId>(n)).name << ";\n";

  // Pad connectivity is expressed with assigns (pads are not real gates).
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (!nl.cell_is_port(id)) continue;
    const netlist::PinId pad = nl.cell(id).first_pin;
    const NetId net = nl.pin(pad).net;
    if (net == netlist::kInvalidId) continue;
    if (nl.lib_cell_of(id).kind == liberty::CellKind::PortIn)
      out << "  assign " << nl.net(net).name << " = " << nl.cell(id).name << ";\n";
    else
      out << "  assign " << nl.cell(id).name << " = " << nl.net(net).name << ";\n";
  }

  // Gate instances.
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    if (nl.cell_is_port(id)) continue;
    const auto& cell = nl.cell(id);
    const auto& master = nl.lib_cell_of(id);
    out << "  " << master.name << " " << cell.name << " ( ";
    bool first_pin = true;
    for (int k = 0; k < cell.num_pins; ++k) {
      const netlist::PinId p = cell.first_pin + k;
      const NetId net = nl.pin(p).net;
      if (net == netlist::kInvalidId) continue;
      out << (first_pin ? "" : ", ") << "."
          << master.pins[static_cast<size_t>(k)].name << "("
          << nl.net(net).name << ")";
      first_pin = false;
    }
    out << " );\n";
  }
  out << "endmodule\n";
}

void write_verilog_file(const netlist::Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open " + path + " for writing");
  write_verilog(design, out);
}

namespace {

class VlogLexer {
 public:
  explicit VlogLexer(std::istream& in) {
    std::ostringstream ss;
    ss << in.rdbuf();
    src_ = ss.str();
  }

  // Tokens: identifiers and single punctuation chars. Empty string = EOF.
  std::string next() {
    skip();
    if (pos_ >= src_.size()) return {};
    const char c = src_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\\' ||
        c == '$') {
      size_t start = pos_;
      while (pos_ < src_.size()) {
        const char d = src_[pos_];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' || d == '$' ||
            d == '\\')
          ++pos_;
        else
          break;
      }
      return src_.substr(start, pos_ - start);
    }
    ++pos_;
    return std::string(1, c);
  }

  int line() const { return line_; }

 private:
  void skip() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, src_.size());
      } else {
        break;
      }
    }
  }

  std::string src_;
  size_t pos_ = 0;
  int line_ = 1;
};

[[noreturn]] void fail(const VlogLexer& lex, const std::string& msg) {
  throw std::runtime_error("verilog parse error at line " +
                           std::to_string(lex.line()) + ": " + msg);
}

}  // namespace

netlist::Design read_verilog(const liberty::CellLibrary& lib, std::istream& in) {
  VlogLexer lex(in);
  std::string tok = lex.next();
  if (tok != "module") fail(lex, "expected 'module'");
  const std::string mod_name = lex.next();
  netlist::Design design(&lib, mod_name);
  netlist::Netlist& nl = design.netlist;

  // Skip the port list — directions come from the declarations.
  while (!(tok = lex.next()).empty() && tok != ";") {
  }
  if (tok.empty()) fail(lex, "unexpected EOF in module header");

  struct PendingPort {
    std::string name;
    bool is_input;
  };
  std::vector<PendingPort> ports;
  std::vector<std::string> wires;

  struct Instance {
    std::string master, name;
    std::vector<std::pair<std::string, std::string>> conns;  // pin -> net
  };
  std::vector<Instance> instances;
  std::vector<std::pair<std::string, std::string>> assigns;  // lhs = rhs

  while (!(tok = lex.next()).empty() && tok != "endmodule") {
    if (tok == "input" || tok == "output" || tok == "wire") {
      const std::string kind = tok;
      while (!(tok = lex.next()).empty() && tok != ";") {
        if (tok == ",") continue;
        if (kind == "wire")
          wires.push_back(tok);
        else
          ports.push_back({tok, kind == "input"});
      }
    } else if (tok == "assign") {
      const std::string lhs = lex.next();
      if (lex.next() != "=") fail(lex, "expected '=' in assign");
      const std::string rhs = lex.next();
      if (lex.next() != ";") fail(lex, "expected ';' after assign");
      assigns.emplace_back(lhs, rhs);
    } else {
      // Instance: MASTER name ( .PIN(net), ... );
      Instance inst;
      inst.master = tok;
      inst.name = lex.next();
      if (inst.name.empty()) fail(lex, "expected instance name");
      if (lex.next() != "(") fail(lex, "expected '(' after instance name");
      for (;;) {
        tok = lex.next();
        if (tok == ")") break;
        if (tok == ",") continue;
        if (tok != ".") fail(lex, "expected named connection '.pin(net)'");
        const std::string pin = lex.next();
        if (lex.next() != "(") fail(lex, "expected '(' in connection");
        const std::string net = lex.next();
        if (lex.next() != ")") fail(lex, "expected ')' in connection");
        inst.conns.emplace_back(pin, net);
      }
      if (lex.next() != ";") fail(lex, "expected ';' after instance");
      instances.push_back(std::move(inst));
    }
  }

  // Create nets for every declared wire and every port.
  auto ensure_net = [&](const std::string& name) -> NetId {
    const NetId existing = nl.find_net(name);
    return existing != netlist::kInvalidId ? existing : nl.add_net(name);
  };
  for (const std::string& w : wires) ensure_net(w);

  // Ports become pad cells.  Direct port-to-net aliasing via assigns is
  // resolved so the pad connects to the internal net.
  const int port_in = lib.find_cell(liberty::CellLibrary::kPortInName);
  const int port_out = lib.find_cell(liberty::CellLibrary::kPortOutName);
  if (port_in < 0 || port_out < 0)
    throw std::runtime_error("library lacks IO pad masters");
  for (const PendingPort& port : ports) {
    // assign <net> = <port>  (input) / assign <port> = <net>  (output)
    std::string net_name = port.name;
    for (const auto& [lhs, rhs] : assigns) {
      if (port.is_input && rhs == port.name) net_name = lhs;
      if (!port.is_input && lhs == port.name) net_name = rhs;
    }
    const NetId net = ensure_net(net_name);
    const CellId pad = nl.add_cell(port.name, port.is_input ? port_in : port_out);
    nl.cell(pad).fixed = true;
    nl.connect(net, pad, "PAD");
  }

  for (const Instance& inst : instances) {
    const int master = lib.find_cell(inst.master);
    if (master < 0)
      throw std::runtime_error("unknown master in verilog: " + inst.master);
    const CellId cell = nl.add_cell(inst.name, master);
    for (const auto& [pin, net] : inst.conns)
      nl.connect(ensure_net(net), cell, pin);
  }

  design.init_positions();
  return design;
}

netlist::Design read_verilog_file(const liberty::CellLibrary& lib,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw std::runtime_error("cannot open " + path);
  return read_verilog(lib, in);
}

}  // namespace dtp::io
