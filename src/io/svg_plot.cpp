#include "io/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <stdexcept>

namespace dtp::io {

using netlist::CellId;
using netlist::PinId;

namespace {

class SvgCanvas {
 public:
  SvgCanvas(const std::string& path, const Rect& world, double pixels)
      : out_(path), world_(world), scale_(pixels / world.width()) {
    if (!out_.good())
      throw std::runtime_error("cannot open " + path + " for writing");
    const double h = world.height() * scale_;
    out_ << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << pixels
         << "\" height=\"" << h << "\" viewBox=\"0 0 " << pixels << " " << h
         << "\">\n";
    out_ << "<rect width=\"100%\" height=\"100%\" fill=\"#101418\"/>\n";
  }

  ~SvgCanvas() { out_ << "</svg>\n"; }

  // World -> screen (y flipped: SVG origin is top-left).
  double sx(double x) const { return (x - world_.xl) * scale_; }
  double sy(double y) const { return (world_.yh - y) * scale_; }

  void rect(double xl, double yl, double w, double h, const std::string& fill,
            double opacity = 1.0) {
    out_ << "<rect x=\"" << sx(xl) << "\" y=\"" << sy(yl + h) << "\" width=\""
         << w * scale_ << "\" height=\"" << h * scale_ << "\" fill=\"" << fill
         << "\" fill-opacity=\"" << opacity << "\"/>\n";
  }

  void line(double x1, double y1, double x2, double y2, const std::string& color,
            double width_px) {
    out_ << "<line x1=\"" << sx(x1) << "\" y1=\"" << sy(y1) << "\" x2=\""
         << sx(x2) << "\" y2=\"" << sy(y2) << "\" stroke=\"" << color
         << "\" stroke-width=\"" << width_px << "\"/>\n";
  }

 private:
  std::ofstream out_;
  Rect world_;
  double scale_;
};

// Slack -> color: deep red at `worst`, yellow at 0, green above.
std::string slack_color(double slack, double worst) {
  if (!std::isfinite(slack)) return "#3a4450";
  if (slack >= 0.0) return "#3c9d55";
  const double t = std::clamp(slack / std::min(worst, -1e-12), 0.0, 1.0);
  // t = 0 -> yellow (255, 210, 60), t = 1 -> red (225, 40, 40).
  const int r = static_cast<int>(255 + t * (225 - 255));
  const int g = static_cast<int>(210 + t * (40 - 210));
  const int b = static_cast<int>(60 + t * (40 - 60));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

void draw_frame(SvgCanvas& canvas, const netlist::Design& design,
                const SvgOptions& options) {
  const auto& fp = design.floorplan;
  canvas.rect(fp.core.xl, fp.core.yl, fp.core.width(), fp.core.height(),
              "#1a2128");
  if (options.draw_rows) {
    for (int r = 0; r <= fp.num_rows(); ++r)
      canvas.line(fp.core.xl, fp.core.yl + r * fp.row_height, fp.core.xh,
                  fp.core.yl + r * fp.row_height, "#242e38", 0.5);
  }
}

void draw_cells(SvgCanvas& canvas, const netlist::Design& design,
                const std::function<std::string(CellId)>& color_of) {
  const netlist::Netlist& nl = design.netlist;
  for (size_t c = 0; c < nl.num_cells(); ++c) {
    const auto id = static_cast<CellId>(c);
    const auto& master = nl.lib_cell_of(id);
    if (nl.cell(id).fixed) {
      // Pads: small markers on the ring.
      canvas.rect(design.cell_x[c] - 0.6, design.cell_y[c] - 0.6, 1.2, 1.2,
                  "#5d81a8");
      continue;
    }
    canvas.rect(design.cell_x[c], design.cell_y[c], master.width, master.height,
                color_of(id), 0.9);
  }
}

}  // namespace

void write_placement_svg(const netlist::Design& design, const std::string& path,
                         const SvgOptions& options) {
  const auto& core = design.floorplan.core;
  const Rect world{core.xl - 3, core.yl - 3, core.xh + 3, core.yh + 3};
  SvgCanvas canvas(path, world, options.pixels);
  draw_frame(canvas, design, options);
  draw_cells(canvas, design, [](CellId) { return std::string("#6aa2d8"); });
}

void write_slack_svg(const netlist::Design& design, sta::Timer& timer,
                     const std::string& path, const SvgOptions& options) {
  timer.update_required();
  const netlist::Netlist& nl = design.netlist;
  const double wns = timer.metrics().wns;

  // Worst slack per cell over its pins.
  std::vector<double> cell_slack(nl.num_cells(),
                                 std::numeric_limits<double>::infinity());
  for (size_t p = 0; p < nl.num_pins(); ++p) {
    if (!timer.graph().in_graph(static_cast<PinId>(p))) continue;
    const CellId c = nl.pin(static_cast<PinId>(p)).cell;
    cell_slack[static_cast<size_t>(c)] =
        std::min(cell_slack[static_cast<size_t>(c)],
                 timer.pin_slack(static_cast<PinId>(p)));
  }

  const auto& core = design.floorplan.core;
  const Rect world{core.xl - 3, core.yl - 3, core.xh + 3, core.yh + 3};
  SvgCanvas canvas(path, world, options.pixels);
  draw_frame(canvas, design, options);
  draw_cells(canvas, design, [&](CellId c) {
    return slack_color(cell_slack[static_cast<size_t>(c)], wns);
  });

  if (options.draw_critical_path && !timer.graph().endpoints().empty()) {
    // Overlay the worst-k endpoint paths.
    const auto& slacks = timer.endpoint_slack();
    std::vector<size_t> order;
    for (size_t e = 0; e < slacks.size(); ++e)
      if (std::isfinite(slacks[e])) order.push_back(e);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return slacks[a] < slacks[b]; });
    const int k_paths =
        std::min<int>(options.highlight_paths, static_cast<int>(order.size()));
    for (int k = 0; k < k_paths; ++k) {
      const auto path_nodes =
          timer.trace_critical_path(timer.graph().endpoints()[order[static_cast<size_t>(k)]].pin);
      for (size_t i = 1; i < path_nodes.size(); ++i) {
        const Vec2 a = timer.pin_positions()[static_cast<size_t>(path_nodes[i - 1].pin)];
        const Vec2 b = timer.pin_positions()[static_cast<size_t>(path_nodes[i].pin)];
        canvas.line(a.x, a.y, b.x, b.y, k == 0 ? "#ff5050" : "#ff9e3d",
                    k == 0 ? 2.0 : 1.2);
      }
    }
  }
}

}  // namespace dtp::io
