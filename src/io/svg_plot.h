// SVG placement plots: the core with rows, cells, pads — optionally colored
// by timing slack (red = critical, green = comfortable) with the worst path
// overlaid.  Produces the classic placement-paper figure for any design
// state; viewable in any browser.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "sta/timer.h"

namespace dtp::io {

struct SvgOptions {
  double pixels = 900.0;       // output width (height scales with aspect)
  bool draw_rows = true;
  bool draw_critical_path = true;  // only when a timer is supplied
  int highlight_paths = 3;         // worst-k endpoint paths overlaid
};

// Plain connectivity-free plot (cells as boxes).
void write_placement_svg(const netlist::Design& design, const std::string& path,
                         const SvgOptions& options = {});

// Slack-colored plot: per-cell color from the worst slack over the cell's
// pins.  `timer` must have completed evaluate() + update_required().
void write_slack_svg(const netlist::Design& design, sta::Timer& timer,
                     const std::string& path, const SvgOptions& options = {});

}  // namespace dtp::io
