// Bookshelf-lite placement interchange (.aux/.nodes/.nets/.pl/.scl subset).
//
// The ICCAD/ISPD placement contests distribute designs in the Bookshelf
// format; this module writes and reads the subset needed to round-trip our
// designs: .nodes (cell names, dimensions, terminal flags), .nets (pin
// connections with offsets), .pl (positions + fixed flags) and a one-row-set
// .scl (core rows).  Cell master resolution on read is by dimensions+name
// conventions and is therefore lossy for timing (Bookshelf has no library
// binding) — read_placement() is the faithful use-case: re-importing
// positions for a known design.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace dtp::io {

// Writes design.aux plus the .nodes/.nets/.pl/.scl files into `directory`
// with file stem `design.name`.
void write_bookshelf(const netlist::Design& design, const std::string& directory);

// Reads a .pl file and applies positions (and fixed flags) to matching cell
// names in `design`. Unknown names throw. Returns number of cells updated.
size_t read_placement(netlist::Design& design, const std::string& pl_path);

}  // namespace dtp::io
