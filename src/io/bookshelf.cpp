#include "io/bookshelf.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dtp::io {

using netlist::CellId;
using netlist::NetId;

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open " + path + " for writing");
  return out;
}

}  // namespace

void write_bookshelf(const netlist::Design& design, const std::string& directory) {
  const netlist::Netlist& nl = design.netlist;
  const std::string stem = directory + "/" + design.name;

  {
    auto aux = open_out(stem + ".aux");
    aux << "RowBasedPlacement : " << design.name << ".nodes " << design.name
        << ".nets " << design.name << ".pl " << design.name << ".scl\n";
  }
  {
    auto nodes = open_out(stem + ".nodes");
    nodes << "UCLA nodes 1.0\n\n";
    size_t terminals = 0;
    for (size_t c = 0; c < nl.num_cells(); ++c)
      if (nl.cell(static_cast<CellId>(c)).fixed) ++terminals;
    nodes << "NumNodes : " << nl.num_cells() << "\n";
    nodes << "NumTerminals : " << terminals << "\n";
    for (size_t c = 0; c < nl.num_cells(); ++c) {
      const auto& cell = nl.cell(static_cast<CellId>(c));
      const auto& master = nl.lib_cell_of(static_cast<CellId>(c));
      nodes << "  " << cell.name << "  " << master.width << "  " << master.height;
      if (cell.fixed) nodes << "  terminal";
      nodes << "\n";
    }
  }
  {
    auto nets = open_out(stem + ".nets");
    nets << "UCLA nets 1.0\n\n";
    size_t num_pins = 0;
    for (size_t n = 0; n < nl.num_nets(); ++n)
      num_pins += nl.net(static_cast<NetId>(n)).pins.size();
    nets << "NumNets : " << nl.num_nets() << "\n";
    nets << "NumPins : " << num_pins << "\n";
    for (size_t n = 0; n < nl.num_nets(); ++n) {
      const netlist::Net& net = nl.net(static_cast<NetId>(n));
      nets << "NetDegree : " << net.pins.size() << "  " << net.name << "\n";
      for (netlist::PinId p : net.pins) {
        const auto& cell = nl.cell(nl.pin(p).cell);
        const auto& master = nl.lib_cell_of(nl.pin(p).cell);
        const auto& lp = nl.lib_pin_of(p);
        // Bookshelf pin offsets are from the cell *center*.
        const double ox = lp.offset_x - master.width / 2.0;
        const double oy = lp.offset_y - master.height / 2.0;
        nets << "  " << cell.name << "  "
             << (nl.pin_is_output(p) ? "O" : "I") << " : " << ox << "  " << oy
             << "\n";
      }
    }
  }
  {
    auto pl = open_out(stem + ".pl");
    pl.precision(12);
    pl << "UCLA pl 1.0\n\n";
    for (size_t c = 0; c < nl.num_cells(); ++c) {
      const auto& cell = nl.cell(static_cast<CellId>(c));
      pl << cell.name << "  " << design.cell_x[c] << "  " << design.cell_y[c]
         << " : N";
      if (cell.fixed) pl << " /FIXED";
      pl << "\n";
    }
  }
  {
    auto scl = open_out(stem + ".scl");
    const auto& fp = design.floorplan;
    scl << "UCLA scl 1.0\n\n";
    scl << "NumRows : " << fp.num_rows() << "\n";
    for (int r = 0; r < fp.num_rows(); ++r) {
      scl << "CoreRow Horizontal\n";
      scl << "  Coordinate : " << fp.core.yl + r * fp.row_height << "\n";
      scl << "  Height : " << fp.row_height << "\n";
      scl << "  Sitewidth : " << fp.site_width << "\n";
      scl << "  SubrowOrigin : " << fp.core.xl
          << "  NumSites : " << static_cast<int>(fp.core.width() / fp.site_width)
          << "\n";
      scl << "End\n";
    }
  }
}

size_t read_placement(netlist::Design& design, const std::string& pl_path) {
  std::ifstream in(pl_path);
  if (!in.good()) throw std::runtime_error("cannot open " + pl_path);
  std::string line;
  size_t updated = 0;
  bool first = true;
  while (std::getline(in, line)) {
    // Strip comments.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream is(line);
    std::string name;
    if (!(is >> name)) continue;
    if (first && name == "UCLA") {
      first = false;
      continue;
    }
    first = false;
    double x, y;
    if (!(is >> x >> y))
      throw std::runtime_error("malformed .pl line: " + line);
    const netlist::CellId c = design.netlist.find_cell(name);
    if (c == netlist::kInvalidId)
      throw std::runtime_error(".pl names unknown cell: " + name);
    design.cell_x[static_cast<size_t>(c)] = x;
    design.cell_y[static_cast<size_t>(c)] = y;
    // Optional ": N [/FIXED]" tail.
    std::string tok;
    while (is >> tok)
      if (tok == "/FIXED") design.netlist.cell(c).fixed = true;
    ++updated;
  }
  return updated;
}

}  // namespace dtp::io
