// 2-D geometry primitives shared by the placer, router and timer.
#pragma once

#include <algorithm>
#include <cmath>

namespace dtp {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2() = default;
  Vec2(double x_, double y_) : x(x_), y(y_) {}

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }

  double norm2() const { return std::sqrt(x * x + y * y); }
};

// Manhattan (rectilinear) distance — the metric of on-chip routing.
inline double manhattan(const Vec2& a, const Vec2& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

struct Rect {
  double xl = 0.0, yl = 0.0, xh = 0.0, yh = 0.0;

  Rect() = default;
  Rect(double xl_, double yl_, double xh_, double yh_)
      : xl(xl_), yl(yl_), xh(xh_), yh(yh_) {}

  double width() const { return xh - xl; }
  double height() const { return yh - yl; }
  double area() const { return width() * height(); }
  bool contains(const Vec2& p) const {
    return p.x >= xl && p.x <= xh && p.y >= yl && p.y <= yh;
  }
  // Overlap area with another rectangle (0 if disjoint).
  double overlap(const Rect& o) const {
    const double w = std::min(xh, o.xh) - std::max(xl, o.xl);
    const double h = std::min(yh, o.yh) - std::max(yl, o.yl);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }
};

}  // namespace dtp
