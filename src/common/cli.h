// Shared --flag value argument scanning for the CLI tools and benches.
//
// One hand-rolled parser instead of three: tools/dtp_place, tools/dtp_bench
// and every bench binary scan argv through these helpers.  Flags are
// position-independent, the last occurrence wins for scanners that return the
// first match (callers pass argv once), and unknown flags are the caller's
// problem — the tools that care run their own strict pass over argv.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace dtp::cli {

inline const char* arg_str(int argc, char** argv, const char* flag,
                           const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return fallback;
}

inline int arg_int(int argc, char** argv, const char* flag, int fallback) {
  const char* s = arg_str(argc, argv, flag, nullptr);
  return s != nullptr ? std::atoi(s) : fallback;
}

inline double arg_double(int argc, char** argv, const char* flag,
                         double fallback) {
  const char* s = arg_str(argc, argv, flag, nullptr);
  return s != nullptr ? std::atof(s) : fallback;
}

inline bool arg_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

// A flag with an optional numeric value: absent -> 0, bare -> `bare_value`,
// followed by a number -> that number.
inline int arg_opt_int(int argc, char** argv, const char* flag, int bare_value) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 < argc &&
          std::isdigit(static_cast<unsigned char>(argv[i + 1][0])))
        return std::atoi(argv[i + 1]);
      return bare_value;
    }
  return 0;
}

}  // namespace dtp::cli
