// Console table and CSV writers used by the benchmark harness to print the
// paper's tables and dump figure series.
#pragma once

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "common/assert.h"

namespace dtp {

// A simple right-aligned fixed-width console table. Columns size to content.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    DTP_ASSERT(row.size() == header_.size());
    rows_.push_back(std::move(row));
  }

  // Separator line between body rows (e.g. before an "Avg." summary row).
  void add_rule() { rules_.push_back(rows_.size()); }

  std::string to_string() const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto print_rule = [&] {
      for (size_t c = 0; c < width.size(); ++c)
        os << std::string(width[c] + 2, '-') << (c + 1 < width.size() ? "+" : "");
      os << "\n";
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        os << " " << std::setw(static_cast<int>(width[c])) << row[c] << " "
           << (c + 1 < row.size() ? "|" : "");
      }
      os << "\n";
    };
    print_row(header_);
    print_rule();
    for (size_t r = 0; r < rows_.size(); ++r) {
      for (size_t rule : rules_)
        if (rule == r) print_rule();
      print_row(rows_[r]);
    }
    return os.str();
  }

  void print(std::FILE* out = stdout) const {
    std::fputs(to_string().c_str(), out);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<size_t> rules_;
};

// Formats a double with fixed decimals (benchmark tables).
inline std::string fmt(double v, int decimals = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

inline std::string fmt_int(long long v) { return std::to_string(v); }

// Streaming CSV writer (figure series).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header)
      : out_(path) {
    DTP_ASSERT_MSG(out_.good(), "cannot open CSV output file");
    cols_ = header.size();
    write_row_strings(header);
  }

  void write_row(const std::vector<double>& values) {
    DTP_ASSERT(values.size() == cols_);
    for (size_t i = 0; i < values.size(); ++i) {
      if (i) out_ << ',';
      out_ << std::setprecision(12) << values[i];
    }
    out_ << '\n';
  }

 private:
  void write_row_strings(const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out_ << ',';
      out_ << row[i];
    }
    out_ << '\n';
  }

  std::ofstream out_;
  size_t cols_ = 0;
};

}  // namespace dtp
