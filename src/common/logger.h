// Minimal leveled logger.  Single global sink (stderr by default), printf-style
// formatting, compile-out-able below a level.  Placement loops log at Info every
// N iterations; Debug is for development only.
//
// Thread-safe: each record is formatted into one buffer and emitted with a
// single fprintf under a mutex, so lines from ThreadPool workers never
// interleave.  set_timestamps(true) prefixes each record with the wall-clock
// time of day ([HH:MM:SS.mmm]), useful when correlating logs with a trace.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace dtp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

// Parses a --log-level style name ("debug", "info", "warn", "error",
// "silent"); nullopt for anything else.
inline std::optional<LogLevel> parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn" || name == "warning") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "silent" || name == "off") return LogLevel::Silent;
  return std::nullopt;
}

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirect output (e.g. to a file handle owned by the caller). Never owns.
  void set_sink(std::FILE* sink) { sink_ = sink; }

  // Prefix records with the wall-clock time of day.
  void set_timestamps(bool on) { timestamps_ = on; }

  void log(LogLevel level, const char* fmt, va_list args) {
    if (level < level_) return;
    static const char* kTag[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};

    // Format the whole record into one buffer first so the sink sees a single
    // write: worker-thread lines cannot interleave mid-record.
    char prefix[48];
    int prefix_len = 0;
    if (timestamps_) {
      std::timespec ts{};
      std::timespec_get(&ts, TIME_UTC);
      std::tm tm{};
      localtime_r(&ts.tv_sec, &tm);
      prefix_len = std::snprintf(prefix, sizeof(prefix),
                                 "[%02d:%02d:%02d.%03ld] ", tm.tm_hour,
                                 tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000);
    }

    va_list probe;
    va_copy(probe, args);
    char stack_buf[512];
    const int need = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, probe);
    va_end(probe);
    if (need < 0) return;

    const char* body = stack_buf;
    std::vector<char> heap_buf;
    if (static_cast<size_t>(need) >= sizeof(stack_buf)) {
      heap_buf.resize(static_cast<size_t>(need) + 1);
      std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args);
      body = heap_buf.data();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(sink_, "%.*s[%s] %s\n", prefix_len, prefix,
                 kTag[static_cast<int>(level)], body);
    std::fflush(sink_);
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Info;
  std::FILE* sink_ = stderr;
  bool timestamps_ = false;
  std::mutex mutex_;
};

inline void log_at(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  Logger::instance().log(level, fmt, args);
  va_end(args);
}

#define DTP_LOG_DEBUG(...) ::dtp::log_at(::dtp::LogLevel::Debug, __VA_ARGS__)
#define DTP_LOG_INFO(...) ::dtp::log_at(::dtp::LogLevel::Info, __VA_ARGS__)
#define DTP_LOG_WARN(...) ::dtp::log_at(::dtp::LogLevel::Warn, __VA_ARGS__)
#define DTP_LOG_ERROR(...) ::dtp::log_at(::dtp::LogLevel::Error, __VA_ARGS__)

}  // namespace dtp
