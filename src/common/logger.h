// Minimal leveled logger.  Single global sink (stderr by default), printf-style
// formatting, compile-out-able below a level.  Placement loops log at Info every
// N iterations; Debug is for development only.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace dtp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  // Redirect output (e.g. to a file handle owned by the caller). Never owns.
  void set_sink(std::FILE* sink) { sink_ = sink; }

  void log(LogLevel level, const char* fmt, va_list args) {
    if (level < level_) return;
    static const char* kTag[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
    std::fprintf(sink_, "[%s] ", kTag[static_cast<int>(level)]);
    std::vfprintf(sink_, fmt, args);
    std::fputc('\n', sink_);
    std::fflush(sink_);
  }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Info;
  std::FILE* sink_ = stderr;
};

inline void log_at(LogLevel level, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  Logger::instance().log(level, fmt, args);
  va_end(args);
}

#define DTP_LOG_DEBUG(...) ::dtp::log_at(::dtp::LogLevel::Debug, __VA_ARGS__)
#define DTP_LOG_INFO(...) ::dtp::log_at(::dtp::LogLevel::Info, __VA_ARGS__)
#define DTP_LOG_WARN(...) ::dtp::log_at(::dtp::LogLevel::Warn, __VA_ARGS__)
#define DTP_LOG_ERROR(...) ::dtp::log_at(::dtp::LogLevel::Error, __VA_ARGS__)

}  // namespace dtp
