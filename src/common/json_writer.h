// Tiny hand-rolled JSON emitter (no external deps, DESIGN.md §5).
//
// Streams into an internal string; the caller decides where the bytes go.
// Comma placement and key/value alternation are handled by a small state
// stack, so call sites read like the document they produce:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("iter").value(12);
//   w.key("phases").begin_array().value(0.5).value(1.25).end_array();
//   w.end_object();
//   fputs(w.str().c_str(), f);
//
// Numbers are emitted with enough digits to round-trip a double; NaN and
// infinities (not representable in JSON) are emitted as null.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/assert.h"

namespace dtp {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ += '{';
    stack_.push_back(State::ObjectFirst);
    return *this;
  }
  JsonWriter& end_object() {
    DTP_ASSERT(!stack_.empty());
    out_ += '}';
    stack_.pop_back();
    mark_value();
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ += '[';
    stack_.push_back(State::ArrayFirst);
    return *this;
  }
  JsonWriter& end_array() {
    DTP_ASSERT(!stack_.empty());
    out_ += ']';
    stack_.pop_back();
    mark_value();
    return *this;
  }

  JsonWriter& key(const std::string& name) {
    comma();
    append_escaped(name);
    out_ += ':';
    DTP_ASSERT(!stack_.empty());
    stack_.back() = State::ObjectKey;
    return *this;
  }

  JsonWriter& value(const std::string& s) {
    comma();
    append_escaped(s);
    mark_value();
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string(s)); }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      out_ += "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ += buf;
    }
    mark_value();
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    out_ += std::to_string(v);
    mark_value();
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    mark_value();
    return *this;
  }

  // Splices a pre-serialized JSON document in value position (e.g. the
  // metrics-registry dump embedded into a run summary).  `json` must be a
  // complete document; no validation is performed.
  JsonWriter& raw(const std::string& json) {
    comma();
    out_ += json;
    mark_value();
    return *this;
  }

  // The document built so far; complete once every begin_ has its end_.
  const std::string& str() const { return out_; }
  bool complete() const { return stack_.empty() && !out_.empty(); }

 private:
  enum class State : uint8_t {
    ObjectFirst,  // inside {}, nothing written yet
    ObjectKey,    // a key was just written, its value is pending
    ObjectNext,   // at least one pair written
    ArrayFirst,
    ArrayNext,
  };

  void comma() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::ObjectNext || s == State::ArrayNext) out_ += ',';
  }
  // A value (or key:value pair) was completed at the current nesting level.
  void mark_value() {
    if (stack_.empty()) return;
    State& s = stack_.back();
    if (s == State::ObjectFirst || s == State::ObjectKey) s = State::ObjectNext;
    if (s == State::ArrayFirst) s = State::ArrayNext;
  }

  void append_escaped(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<State> stack_;
};

}  // namespace dtp
