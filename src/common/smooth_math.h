// Smooth surrogates for the non-differentiable operations inside STA.
//
// The paper (§3.2) replaces the max/min aggregations of arrival-time
// propagation with log-sum-exp (LSE) smoothing:
//
//     LSE_gamma(x_1..x_n) = gamma * log( sum_i exp(x_i / gamma) )        (Eq. 5)
//
// which upper-bounds max(x_i) and converges to it as gamma -> 0.  min is
// obtained as -LSE_gamma(-x).  The gradient of LSE is the softmax of
// x_i / gamma, which spreads the objective's gradient over *all* near-critical
// fan-ins instead of only the single worst one — the key to stable descent.
//
// All implementations below are numerically stable (max-subtracted) and come
// with analytic gradients used by the differentiable timer's backward pass.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "common/assert.h"

namespace dtp {

// Stable log-sum-exp of a span. Returns max(x) when gamma == 0 is requested
// via a tiny gamma; callers should keep gamma > 0.
inline double log_sum_exp(std::span<const double> xs, double gamma) {
  DTP_ASSERT(!xs.empty());
  DTP_ASSERT(gamma > 0.0);
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;  // all -inf (or a +inf dominates)
  double sum = 0.0;
  for (double x : xs) sum += std::exp((x - m) / gamma);
  return m + gamma * std::log(sum);
}

// Smooth max and its softmax weights. `weights` is resized to xs.size() and
// holds d(LSE)/d(x_i); the weights are positive and sum to 1.
inline double smooth_max(std::span<const double> xs, double gamma,
                         std::vector<double>& weights) {
  DTP_ASSERT(!xs.empty());
  DTP_ASSERT(gamma > 0.0);
  const double m = *std::max_element(xs.begin(), xs.end());
  weights.resize(xs.size());
  if (!std::isfinite(m)) {
    // Degenerate: every operand is -inf. Put all weight on the first operand;
    // the value propagates as -inf and the gradient is irrelevant.
    std::fill(weights.begin(), weights.end(), 0.0);
    weights[0] = 1.0;
    return m;
  }
  double sum = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    weights[i] = std::exp((xs[i] - m) / gamma);
    sum += weights[i];
  }
  for (double& w : weights) w /= sum;
  return m + gamma * std::log(sum);
}

// Smooth min: -LSE(-x). Weights are again positive, summing to 1, and equal to
// d(smooth_min)/d(x_i).
inline double smooth_min(std::span<const double> xs, double gamma,
                         std::vector<double>& weights) {
  thread_local std::vector<double> negated;
  negated.assign(xs.begin(), xs.end());
  for (double& x : negated) x = -x;
  const double v = smooth_max(negated, gamma, weights);
  return -v;
}

// Exact max with one-hot subgradient, used by the timer's non-smoothed mode.
inline double hard_max(std::span<const double> xs, std::vector<double>& weights) {
  DTP_ASSERT(!xs.empty());
  size_t best = 0;
  for (size_t i = 1; i < xs.size(); ++i)
    if (xs[i] > xs[best]) best = i;
  weights.assign(xs.size(), 0.0);
  weights[best] = 1.0;
  return xs[best];
}

inline double hard_min(std::span<const double> xs, std::vector<double>& weights) {
  DTP_ASSERT(!xs.empty());
  size_t best = 0;
  for (size_t i = 1; i < xs.size(); ++i)
    if (xs[i] < xs[best]) best = i;
  weights.assign(xs.size(), 0.0);
  weights[best] = 1.0;
  return xs[best];
}

// Smooth |x| used where a differentiable rectilinear distance is needed away
// from the origin kink: sqrt(x^2 + eps).
inline double smooth_abs(double x, double eps) { return std::sqrt(x * x + eps); }
inline double smooth_abs_grad(double x, double eps) {
  return x / std::sqrt(x * x + eps);
}

// sign(x) with sign(0) = 0: the subgradient of |x| used for rectilinear edge
// lengths (the timer keeps the exact kink; optimizers tolerate it the way they
// tolerate ReLU).
inline double sign(double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }

}  // namespace dtp
