// P² (piecewise-parabolic) streaming quantile estimator — Jain & Chlamtac,
// CACM 1985.  Tracks one quantile of a stream in O(1) memory with five
// markers whose heights are adjusted by a parabolic (fallback: linear)
// interpolation as observations arrive.  No heap allocation, ever — the
// estimator is a fixed-size value type, which is what lets it live inside
// the timing hot loop's activity sketches (DESIGN.md §11) and inside
// obs::Histogram without breaking the zero-allocation contract of §10.
//
// Accuracy: exact until five observations have been seen (the markers are
// the sorted sample), then an estimate whose error shrinks as the stream
// grows; for the slowly-drifting per-iteration distributions it sketches
// here the estimate tracks the true quantile to a few percent.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace dtp {

class P2Quantile {
 public:
  explicit P2Quantile(double p = 0.5) { reset(p); }

  double quantile() const { return p_; }
  uint64_t count() const { return count_; }

  void reset() { reset(p_); }
  void reset(double p) {
    p_ = p;
    count_ = 0;
    // Marker positions are 1-based as in the paper; desired positions start
    // at their steady-state pattern and advance by dn each observation.
    pos_ = {1.0, 2.0, 3.0, 4.0, 5.0};
    desired_ = {1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0};
    dn_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
    q_ = {0.0, 0.0, 0.0, 0.0, 0.0};
  }

  void observe(double x) {
    if (count_ < 5) {
      q_[count_++] = x;
      if (count_ == 5) std::sort(q_.begin(), q_.end());
      return;
    }
    // Find the marker cell containing x, clamping the extremes.
    int k;
    if (x < q_[0]) {
      q_[0] = x;
      k = 0;
    } else if (x >= q_[4]) {
      q_[4] = std::max(q_[4], x);
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= q_[static_cast<size_t>(k) + 1]) ++k;
    }
    ++count_;
    for (int i = k + 1; i < 5; ++i) pos_[static_cast<size_t>(i)] += 1.0;
    for (int i = 0; i < 5; ++i)
      desired_[static_cast<size_t>(i)] += dn_[static_cast<size_t>(i)];

    // Adjust the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const size_t si = static_cast<size_t>(i);
      const double d = desired_[si] - pos_[si];
      const double gap_up = pos_[si + 1] - pos_[si];
      const double gap_dn = pos_[si - 1] - pos_[si];
      if ((d >= 1.0 && gap_up > 1.0) || (d <= -1.0 && gap_dn < -1.0)) {
        const double s = d >= 1.0 ? 1.0 : -1.0;
        const double qp = parabolic(si, s);
        if (q_[si - 1] < qp && qp < q_[si + 1])
          q_[si] = qp;
        else
          q_[si] = linear(si, s);
        pos_[si] += s;
      }
    }
  }

  // Current estimate of the tracked quantile.  Exact while fewer than five
  // observations have been seen (nearest-rank over the sorted sample).
  double value() const {
    if (count_ == 0) return 0.0;
    if (count_ < 5) {
      std::array<double, 5> s = q_;
      std::sort(s.begin(), s.begin() + static_cast<long>(count_));
      const double rank = p_ * static_cast<double>(count_ - 1);
      const size_t idx = static_cast<size_t>(rank + 0.5);
      return s[std::min(idx, static_cast<size_t>(count_ - 1))];
    }
    return q_[2];
  }

 private:
  double parabolic(size_t i, double s) const {
    const double np = pos_[i + 1], n0 = pos_[i], nm = pos_[i - 1];
    return q_[i] + s / (np - nm) *
                       ((n0 - nm + s) * (q_[i + 1] - q_[i]) / (np - n0) +
                        (np - n0 - s) * (q_[i] - q_[i - 1]) / (n0 - nm));
  }
  double linear(size_t i, double s) const {
    const size_t j = s > 0.0 ? i + 1 : i - 1;
    return q_[i] + s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
  }

  double p_ = 0.5;
  uint64_t count_ = 0;
  std::array<double, 5> q_{};        // marker heights
  std::array<double, 5> pos_{};      // marker positions (1-based)
  std::array<double, 5> desired_{};  // desired positions
  std::array<double, 5> dn_{};       // desired-position increments
};

}  // namespace dtp
