// Deterministic pseudo-random number generation.
//
// All randomness in this repository flows through Rng so that every workload,
// test sweep and benchmark is reproducible from a single 64-bit seed.  The
// engine is xoshiro256++ seeded via splitmix64 (the combination recommended by
// the xoshiro authors); it is much faster than std::mt19937_64 and, unlike the
// standard distributions, the helpers below are bit-identical across platforms.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.h"

namespace dtp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    DTP_ASSERT(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next_u64() % span);
  }

  // Standard normal via Box–Muller (no cached spare: keeps state minimal and
  // the stream position deterministic regardless of call pattern).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

  // Geometric-ish heavy-tail sample in [1, cap]: used for net fanout tails.
  int64_t heavy_tail(double alpha, int64_t cap) {
    DTP_ASSERT(alpha > 1.0 && cap >= 1);
    // Inverse-CDF sample of a discrete power law ~ k^-alpha, clipped at cap.
    const double u = uniform();
    const double k = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    const int64_t v = static_cast<int64_t>(k);
    return v < 1 ? 1 : (v > cap ? cap : v);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4] = {};
};

}  // namespace dtp
