// Shared wall-clock / sequence stamping for multi-stream artifacts
// (DESIGN.md §13).
//
// The daemon writes several concurrent record streams — the crash-safety
// journal, the telemetry event ring, per-job JSONL runs, the merged Chrome
// trace — and offline tooling wants to splice them onto ONE timeline.  Every
// stream therefore stamps each record with:
//
//   ts_ms  wall-clock milliseconds since the Unix epoch (merge key across
//          processes and machines; coarse but monotone enough at record
//          granularity), and
//   seq    a monotonic sequence number (total order within one process for
//          records that share a Sequencer, tie-break when ts_ms collides).
//
// journal_seq() is the process-wide sequencer the journal uses; bounded rings
// that need *contiguous* numbering for cursor/gap semantics own a private
// Sequencer instead (a shared counter would make their seqs sparse and turn
// every interleaved journal write into a phantom "gap").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dtp {

// Milliseconds since the Unix epoch.
inline int64_t wall_time_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Monotonic record numbering; thread-safe, starts at 1.
class Sequencer {
 public:
  uint64_t next() { return next_.fetch_add(1, std::memory_order_relaxed); }
  // The most recently issued seq (0 when none yet).
  uint64_t last() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

 private:
  std::atomic<uint64_t> next_{1};
};

// Process-wide sequencer for journal-style streams.
inline Sequencer& journal_seq() {
  static Sequencer* seq = new Sequencer();
  return *seq;
}

}  // namespace dtp
