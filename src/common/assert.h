// Internal invariant checking for the dtp libraries.
//
// DTP_ASSERT guards conditions that are supposed to hold by construction;
// violating one indicates a bug inside this library, not bad user input,
// so it aborts with a source location.  User-facing input validation should
// throw std::runtime_error (or return a Status) at the parse/API boundary
// instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dtp::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "DTP_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace dtp::detail

#define DTP_ASSERT(cond)                                                 \
  do {                                                                   \
    if (!(cond)) ::dtp::detail::assert_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DTP_ASSERT_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) ::dtp::detail::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)
