// Fixed-size thread pool with an allocation-free blocking parallel_for.
//
// This is the CPU substitute for the paper's CUDA kernels (§3.6): every
// levelized timer kernel, the wirelength gradient, and the density splat are
// written as parallel_for over a flat index range, mirroring a 1-D CUDA grid.
// On a 1-core machine the pool degrades to serial execution with near-zero
// overhead (ranges below a grain threshold never touch the dispatch path).
//
// Dispatch is a single shared chunk-claiming job (DESIGN.md §10): the caller
// publishes [begin, end) plus a trampoline function pointer to the body, wakes
// the workers, and each worker claims chunks with one atomic fetch_add until
// the range is drained.  parallel_for is a template, so the body is passed by
// reference through a `const void*` — no std::function, no per-chunk task
// objects, no queue nodes: the steady-state hot loop performs **zero heap
// allocations** (the counting-allocator test enforces this).  An epoch counter
// plus an active-claimer count make the job fields race-free: workers only
// observe a job under the pool mutex, and the dispatcher does not return (or
// install the next job) until every claimer has left the claim loop.
//
// The pool keeps lightweight utilization statistics (chunk counts, time chunks
// waited between dispatch and execution, time workers spent executing, the
// high-water chunk backlog) for the observability artifacts: stats() snapshots
// them and the run-summary JSON embeds them.  Accounting costs two clock reads
// per *chunk* (not per iteration), so it stays on even in benchmark builds.
//
// Per-worker timelines (DESIGN.md §9): when enabled, every chunk is
// additionally recorded as a [t0, t1] busy span on its worker, and mark()
// drops labeled instants onto the shared timeline (the level-dispatch sweeps
// call it), so dispatch imbalance — one worker busy while the rest idle —
// is visible instead of averaged away in the aggregate busy_sec.  Disabled
// (the default) the extra cost is one relaxed atomic load per chunk; span
// recording is the one pool path allowed to allocate, and it is excluded from
// the zero-allocation contract because it is opt-in observability.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dtp {

struct ThreadPoolStats {
  size_t num_threads = 1;
  uint64_t parallel_for_calls = 0;
  uint64_t inline_ranges = 0;    // ranges run serially on the caller
  uint64_t tasks_executed = 0;   // chunks run by workers
  double queue_wait_sec = 0.0;   // sum of per-chunk dispatch-to-start latency
  double busy_sec = 0.0;         // sum of per-chunk execution time
  double lifetime_sec = 0.0;     // pool age at the time of the snapshot
  size_t queue_depth_max = 0;    // high-water mark of the pending-chunk backlog

  // Fraction of worker capacity spent executing chunks since construction.
  double utilization() const {
    const double capacity = lifetime_sec * static_cast<double>(num_threads);
    return capacity > 0.0 ? busy_sec / capacity : 0.0;
  }
};

// One chunk's busy extent on one worker; seconds since pool creation.
struct WorkerSpan {
  uint32_t worker = 0;
  double t0_sec = 0.0;
  double t1_sec = 0.0;
};

// Lifetime execution aggregate of one worker.
struct WorkerStat {
  uint64_t tasks = 0;
  double busy_sec = 0.0;
};

// A labeled instant on the pool timeline (e.g. "sta.propagate" at the start
// of a level sweep).  `label` must be a string literal (pointer is stored).
struct TimelineMark {
  double t_sec = 0.0;
  const char* label = nullptr;
};

class ThreadPool {
 public:
  // n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(size_t n_threads = 0) : created_(Clock::now()) {
    if (n_threads == 0) {
      n_threads = std::thread::hardware_concurrency();
      if (n_threads == 0) n_threads = 1;
    }
    n_threads_ = n_threads;
    // With a single worker, run everything inline on the caller thread.
    if (n_threads_ <= 1) return;
    worker_state_.reserve(n_threads_);
    for (size_t i = 0; i < n_threads_; ++i)
      worker_state_.push_back(std::make_unique<WorkerState>());
    workers_.reserve(n_threads_);
    for (size_t i = 0; i < n_threads_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<uint32_t>(i)); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return n_threads_; }

  // Scratch-slot addressing for bodies that need per-thread workspace without
  // thread_local: workers execute with slot == worker id, inline ranges (and
  // the caller) use caller_slot().  Size per-slot scratch to num_slots().
  size_t num_slots() const { return n_threads_ + 1; }
  size_t caller_slot() const { return n_threads_; }

  ThreadPoolStats stats() const {
    ThreadPoolStats s;
    s.num_threads = n_threads_;
    s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
    s.inline_ranges = inline_ranges_.load(std::memory_order_relaxed);
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.queue_wait_sec =
        1e-9 * static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed));
    s.busy_sec =
        1e-9 * static_cast<double>(busy_ns_.load(std::memory_order_relaxed));
    s.lifetime_sec =
        std::chrono::duration<double>(Clock::now() - created_).count();
    s.queue_depth_max = queue_depth_max_.load(std::memory_order_relaxed);
    return s;
  }

  // Per-worker lifetime aggregates (empty when the pool runs inline).
  std::vector<WorkerStat> worker_stats() const {
    std::vector<WorkerStat> out(worker_state_.size());
    for (size_t i = 0; i < worker_state_.size(); ++i) {
      out[i].tasks = worker_state_[i]->tasks.load(std::memory_order_relaxed);
      out[i].busy_sec =
          1e-9 *
          static_cast<double>(worker_state_[i]->busy_ns.load(std::memory_order_relaxed));
    }
    return out;
  }

  // ---- per-worker timeline (DESIGN.md §9) ----
  void set_timeline_enabled(bool on) {
    timeline_enabled_.store(on, std::memory_order_relaxed);
  }
  bool timeline_enabled() const {
    return timeline_enabled_.load(std::memory_order_relaxed);
  }
  // Snapshot of every recorded busy span, in worker order.  Call from one
  // thread after the timed work has drained.
  std::vector<WorkerSpan> timeline() const {
    std::vector<WorkerSpan> out;
    for (const auto& ws : worker_state_) {
      std::lock_guard<std::mutex> lock(ws->mutex);
      out.insert(out.end(), ws->spans.begin(), ws->spans.end());
    }
    return out;
  }
  std::vector<TimelineMark> timeline_marks() const {
    std::lock_guard<std::mutex> lock(marks_mutex_);
    return marks_;
  }
  void clear_timeline() {
    for (const auto& ws : worker_state_) {
      std::lock_guard<std::mutex> lock(ws->mutex);
      ws->spans.clear();
    }
    std::lock_guard<std::mutex> lock(marks_mutex_);
    marks_.clear();
  }
  // Drops a labeled instant onto the timeline; no-op (one relaxed load) when
  // the timeline is disabled.  `label` must outlive the pool (string literal).
  void mark(const char* label) {
    if (!timeline_enabled()) return;
    const double t =
        std::chrono::duration<double>(Clock::now() - created_).count();
    std::lock_guard<std::mutex> lock(marks_mutex_);
    marks_.push_back(TimelineMark{t, label});
  }
  void reset_queue_depth_max() {
    queue_depth_max_.store(0, std::memory_order_relaxed);
  }

  // Runs body(i) for i in [begin, end). Blocks until all iterations finish.
  // `grain` is the minimum chunk per dispatch; small ranges run inline.
  // The body is invoked by reference — no type erasure, no allocation.
  template <class Body>
  void parallel_for(size_t begin, size_t end, Body&& body, size_t grain = 64) {
    using B = std::remove_reference_t<Body>;
    dispatch(begin, end, grain,
             [](const void* ctx, size_t lo, size_t hi, size_t) {
               const B& f = *static_cast<const B*>(ctx);
               for (size_t i = lo; i < hi; ++i) f(i);
             },
             &body);
  }

  // parallel_for variant whose body receives a scratch slot: body(slot, i).
  // slot < num_slots(); a chunk executed by worker w gets slot == w, inline
  // execution gets caller_slot().  Lets kernels keep per-thread scratch in a
  // pre-sized workspace array instead of thread_local vectors.
  template <class Body>
  void parallel_for_slotted(size_t begin, size_t end, Body&& body,
                            size_t grain = 64) {
    using B = std::remove_reference_t<Body>;
    dispatch(begin, end, grain,
             [](const void* ctx, size_t lo, size_t hi, size_t slot) {
               const B& f = *static_cast<const B*>(ctx);
               for (size_t i = lo; i < hi; ++i) f(slot, i);
             },
             &body);
  }

  // Global pool shared by the timer/placer kernels.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  using Clock = std::chrono::steady_clock;
  using ChunkFn = void (*)(const void*, size_t lo, size_t hi, size_t slot);

  // Owned per worker; only its own worker appends spans, so the mutex is
  // uncontended except during a timeline() snapshot.
  struct WorkerState {
    mutable std::mutex mutex;
    std::vector<WorkerSpan> spans;
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> busy_ns{0};
  };

  // The one in-flight chunk-claiming job.  Fields are written by the
  // dispatcher under mutex_ and read by workers that observed the matching
  // epoch under the same mutex; they stay frozen until every claimer left
  // (active_ == 0), which the dispatcher awaits before returning.
  struct Job {
    const void* ctx = nullptr;
    ChunkFn fn = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t step = 1;
    size_t n_chunks = 0;
    std::atomic<size_t> next{0};       // next chunk index to claim
    std::atomic<size_t> remaining{0};  // chunks not yet completed
    Clock::time_point dispatched;
  };

  void dispatch(size_t begin, size_t end, size_t grain, ChunkFn fn,
                const void* ctx) {
    if (end <= begin) return;
    parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
    const size_t n = end - begin;
    // Inline when serial, small, or nested inside a worker (claiming from the
    // job a worker is itself part of would deadlock).
    if (workers_.empty() || n <= grain || tl_in_worker_) {
      inline_ranges_.fetch_add(1, std::memory_order_relaxed);
      fn(ctx, begin, end, caller_slot());
      return;
    }
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
    const size_t chunks = std::min(n_threads_ * 4, (n + grain - 1) / grain);
    const size_t step = (n + chunks - 1) / chunks;
    const size_t n_chunks = (n + step - 1) / step;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_.ctx = ctx;
      job_.fn = fn;
      job_.begin = begin;
      job_.end = end;
      job_.step = step;
      job_.n_chunks = n_chunks;
      job_.next.store(0, std::memory_order_relaxed);
      job_.remaining.store(n_chunks, std::memory_order_relaxed);
      job_.dispatched = Clock::now();
      ++epoch_;
    }
    if (n_chunks > queue_depth_max_.load(std::memory_order_relaxed))
      queue_depth_max_.store(n_chunks, std::memory_order_relaxed);
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return job_.remaining.load(std::memory_order_acquire) == 0 &&
             active_.load(std::memory_order_acquire) == 0;
    });
  }

  void run_chunks(uint32_t worker_id) {
    WorkerState& ws = *worker_state_[worker_id];
    for (;;) {
      const size_t c = job_.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= job_.n_chunks) return;
      const size_t lo = job_.begin + c * job_.step;
      const size_t hi = std::min(job_.end, lo + job_.step);
      const Clock::time_point start = Clock::now();
      queue_wait_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              start - job_.dispatched)
              .count(),
          std::memory_order_relaxed);
      job_.fn(job_.ctx, lo, hi, worker_id);
      const Clock::time_point stop = Clock::now();
      const uint64_t busy = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
              .count());
      busy_ns_.fetch_add(busy, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      ws.busy_ns.fetch_add(busy, std::memory_order_relaxed);
      ws.tasks.fetch_add(1, std::memory_order_relaxed);
      if (timeline_enabled()) {
        WorkerSpan span;
        span.worker = worker_id;
        span.t0_sec = std::chrono::duration<double>(start - created_).count();
        span.t1_sec = span.t0_sec + 1e-9 * static_cast<double>(busy);
        std::lock_guard<std::mutex> lock(ws.mutex);
        ws.spans.push_back(span);
      }
      if (job_.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk done; the dispatcher may still wait on active_ == 0.
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void worker_loop(uint32_t worker_id) {
    tl_in_worker_ = true;
    uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
        if (stop_) return;
        seen_epoch = epoch_;
        // Joining the claim loop is only possible while holding mutex_ with
        // the current epoch observed — the dispatcher cannot overwrite job_
        // until this claimer leaves again (active_ returns to 0).
        active_.fetch_add(1, std::memory_order_relaxed);
      }
      run_chunks(worker_id);
      if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex_);
        done_cv_.notify_all();
      }
    }
  }

  size_t n_threads_ = 1;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerState>> worker_state_;

  std::mutex mutex_;                 // guards epoch_/stop_ and job_ install
  std::condition_variable cv_;       // workers sleep here between jobs
  std::mutex dispatch_mutex_;        // serializes concurrent dispatchers
  std::mutex done_mutex_;            // completion handshake
  std::condition_variable done_cv_;
  Job job_;
  uint64_t epoch_ = 0;
  std::atomic<size_t> active_{0};    // workers currently inside run_chunks
  bool stop_ = false;
  static thread_local bool tl_in_worker_;

  const Clock::time_point created_;
  std::atomic<uint64_t> parallel_for_calls_{0};
  std::atomic<uint64_t> inline_ranges_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> queue_wait_ns_{0};
  std::atomic<uint64_t> busy_ns_{0};
  std::atomic<size_t> queue_depth_max_{0};
  std::atomic<bool> timeline_enabled_{false};
  mutable std::mutex marks_mutex_;
  std::vector<TimelineMark> marks_;
};

inline thread_local bool ThreadPool::tl_in_worker_ = false;

}  // namespace dtp
