// Fixed-size thread pool with a blocking parallel_for.
//
// This is the CPU substitute for the paper's CUDA kernels (§3.6): every
// levelized timer kernel, the wirelength gradient, and the density splat are
// written as parallel_for over a flat index range, mirroring a 1-D CUDA grid.
// On a 1-core machine the pool degrades to serial execution with near-zero
// overhead (ranges below a grain threshold never touch the queue).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dtp {

class ThreadPool {
 public:
  // n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(size_t n_threads = 0) {
    if (n_threads == 0) {
      n_threads = std::thread::hardware_concurrency();
      if (n_threads == 0) n_threads = 1;
    }
    n_threads_ = n_threads;
    // With a single worker, run everything inline on the caller thread.
    if (n_threads_ <= 1) return;
    workers_.reserve(n_threads_);
    for (size_t i = 0; i < n_threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return n_threads_; }

  // Runs body(i) for i in [begin, end). Blocks until all iterations finish.
  // `grain` is the minimum chunk per task; small ranges run inline.
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t)>& body, size_t grain = 64) {
    if (end <= begin) return;
    const size_t n = end - begin;
    if (workers_.empty() || n <= grain) {
      for (size_t i = begin; i < end; ++i) body(i);
      return;
    }
    const size_t chunks = std::min(n_threads_ * 4, (n + grain - 1) / grain);
    const size_t step = (n + chunks - 1) / chunks;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t c = 0; c * step < n; ++c) ++remaining;
    }
    size_t total = remaining;
    for (size_t c = 0; c * step < n; ++c) {
      const size_t lo = begin + c * step;
      const size_t hi = std::min(end, lo + step);
      enqueue([&, lo, hi] {
        for (size_t i = lo; i < hi; ++i) body(i);
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          --remaining;
        }
        done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    (void)total;
  }

  // Global pool shared by the timer/placer kernels.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  size_t n_threads_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dtp
