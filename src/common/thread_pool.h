// Fixed-size thread pool with a blocking parallel_for.
//
// This is the CPU substitute for the paper's CUDA kernels (§3.6): every
// levelized timer kernel, the wirelength gradient, and the density splat are
// written as parallel_for over a flat index range, mirroring a 1-D CUDA grid.
// On a 1-core machine the pool degrades to serial execution with near-zero
// overhead (ranges below a grain threshold never touch the queue).
//
// The pool keeps lightweight utilization statistics (chunk-task counts, time
// tasks sat in the queue, time workers spent executing, the high-water queue
// depth) for the observability artifacts: stats() snapshots them and the
// run-summary JSON embeds them.  Accounting costs two clock reads per *chunk*
// (not per iteration), so it stays on even in benchmark builds.
//
// Per-worker timelines (DESIGN.md §9): when enabled, every chunk task is
// additionally recorded as a [t0, t1] busy span on its worker, and mark()
// drops labeled instants onto the shared timeline (the level-dispatch sweeps
// call it), so dispatch imbalance — one worker busy while the rest idle —
// is visible instead of averaged away in the aggregate busy_sec.  Disabled
// (the default) the extra cost is one relaxed atomic load per task.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dtp {

struct ThreadPoolStats {
  size_t num_threads = 1;
  uint64_t parallel_for_calls = 0;
  uint64_t inline_ranges = 0;    // ranges run serially on the caller
  uint64_t tasks_executed = 0;   // chunk tasks run by workers
  double queue_wait_sec = 0.0;   // sum of per-task time spent queued
  double busy_sec = 0.0;         // sum of per-task execution time
  double lifetime_sec = 0.0;     // pool age at the time of the snapshot
  size_t queue_depth_max = 0;    // high-water mark of the task queue

  // Fraction of worker capacity spent executing tasks since construction.
  double utilization() const {
    const double capacity = lifetime_sec * static_cast<double>(num_threads);
    return capacity > 0.0 ? busy_sec / capacity : 0.0;
  }
};

// One chunk task's busy extent on one worker; seconds since pool creation.
struct WorkerSpan {
  uint32_t worker = 0;
  double t0_sec = 0.0;
  double t1_sec = 0.0;
};

// Lifetime execution aggregate of one worker.
struct WorkerStat {
  uint64_t tasks = 0;
  double busy_sec = 0.0;
};

// A labeled instant on the pool timeline (e.g. "sta.propagate" at the start
// of a level sweep).  `label` must be a string literal (pointer is stored).
struct TimelineMark {
  double t_sec = 0.0;
  const char* label = nullptr;
};

class ThreadPool {
 public:
  // n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(size_t n_threads = 0) : created_(Clock::now()) {
    if (n_threads == 0) {
      n_threads = std::thread::hardware_concurrency();
      if (n_threads == 0) n_threads = 1;
    }
    n_threads_ = n_threads;
    // With a single worker, run everything inline on the caller thread.
    if (n_threads_ <= 1) return;
    worker_state_.reserve(n_threads_);
    for (size_t i = 0; i < n_threads_; ++i)
      worker_state_.push_back(std::make_unique<WorkerState>());
    workers_.reserve(n_threads_);
    for (size_t i = 0; i < n_threads_; ++i) {
      workers_.emplace_back([this, i] { worker_loop(static_cast<uint32_t>(i)); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return n_threads_; }

  ThreadPoolStats stats() const {
    ThreadPoolStats s;
    s.num_threads = n_threads_;
    s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
    s.inline_ranges = inline_ranges_.load(std::memory_order_relaxed);
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.queue_wait_sec =
        1e-9 * static_cast<double>(queue_wait_ns_.load(std::memory_order_relaxed));
    s.busy_sec =
        1e-9 * static_cast<double>(busy_ns_.load(std::memory_order_relaxed));
    s.lifetime_sec =
        std::chrono::duration<double>(Clock::now() - created_).count();
    s.queue_depth_max = queue_depth_max_.load(std::memory_order_relaxed);
    return s;
  }

  // Per-worker lifetime aggregates (empty when the pool runs inline).
  std::vector<WorkerStat> worker_stats() const {
    std::vector<WorkerStat> out(worker_state_.size());
    for (size_t i = 0; i < worker_state_.size(); ++i) {
      out[i].tasks = worker_state_[i]->tasks.load(std::memory_order_relaxed);
      out[i].busy_sec =
          1e-9 *
          static_cast<double>(worker_state_[i]->busy_ns.load(std::memory_order_relaxed));
    }
    return out;
  }

  // ---- per-worker timeline (DESIGN.md §9) ----
  void set_timeline_enabled(bool on) {
    timeline_enabled_.store(on, std::memory_order_relaxed);
  }
  bool timeline_enabled() const {
    return timeline_enabled_.load(std::memory_order_relaxed);
  }
  // Snapshot of every recorded busy span, in worker order.  Call from one
  // thread after the timed work has drained.
  std::vector<WorkerSpan> timeline() const {
    std::vector<WorkerSpan> out;
    for (const auto& ws : worker_state_) {
      std::lock_guard<std::mutex> lock(ws->mutex);
      out.insert(out.end(), ws->spans.begin(), ws->spans.end());
    }
    return out;
  }
  std::vector<TimelineMark> timeline_marks() const {
    std::lock_guard<std::mutex> lock(marks_mutex_);
    return marks_;
  }
  void clear_timeline() {
    for (const auto& ws : worker_state_) {
      std::lock_guard<std::mutex> lock(ws->mutex);
      ws->spans.clear();
    }
    std::lock_guard<std::mutex> lock(marks_mutex_);
    marks_.clear();
  }
  // Drops a labeled instant onto the timeline; no-op (one relaxed load) when
  // the timeline is disabled.  `label` must outlive the pool (string literal).
  void mark(const char* label) {
    if (!timeline_enabled()) return;
    const double t =
        std::chrono::duration<double>(Clock::now() - created_).count();
    std::lock_guard<std::mutex> lock(marks_mutex_);
    marks_.push_back(TimelineMark{t, label});
  }
  void reset_queue_depth_max() {
    queue_depth_max_.store(0, std::memory_order_relaxed);
  }

  // Runs body(i) for i in [begin, end). Blocks until all iterations finish.
  // `grain` is the minimum chunk per task; small ranges run inline.
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t)>& body, size_t grain = 64) {
    if (end <= begin) return;
    parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
    const size_t n = end - begin;
    if (workers_.empty() || n <= grain) {
      inline_ranges_.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = begin; i < end; ++i) body(i);
      return;
    }
    const size_t chunks = std::min(n_threads_ * 4, (n + grain - 1) / grain);
    const size_t step = (n + chunks - 1) / chunks;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t c = 0; c * step < n; ++c) ++remaining;
    }
    size_t total = remaining;
    for (size_t c = 0; c * step < n; ++c) {
      const size_t lo = begin + c * step;
      const size_t hi = std::min(end, lo + step);
      enqueue([&, lo, hi] {
        for (size_t i = lo; i < hi; ++i) body(i);
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          --remaining;
        }
        done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    (void)total;
  }

  // Global pool shared by the timer/placer kernels.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Task {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  // Owned per worker; only its own worker appends spans, so the mutex is
  // uncontended except during a timeline() snapshot.
  struct WorkerState {
    mutable std::mutex mutex;
    std::vector<WorkerSpan> spans;
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> busy_ns{0};
  };

  void enqueue(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push(Task{std::move(task), Clock::now()});
      const size_t depth = tasks_.size();
      if (depth > queue_depth_max_.load(std::memory_order_relaxed))
        queue_depth_max_.store(depth, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  void worker_loop(uint32_t worker_id) {
    WorkerState& ws = *worker_state_[worker_id];
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      const Clock::time_point start = Clock::now();
      queue_wait_ns_.fetch_add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                               task.enqueued)
              .count(),
          std::memory_order_relaxed);
      task.fn();
      const Clock::time_point end = Clock::now();
      const uint64_t busy = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
              .count());
      busy_ns_.fetch_add(busy, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      ws.busy_ns.fetch_add(busy, std::memory_order_relaxed);
      ws.tasks.fetch_add(1, std::memory_order_relaxed);
      if (timeline_enabled()) {
        WorkerSpan span;
        span.worker = worker_id;
        span.t0_sec =
            std::chrono::duration<double>(start - created_).count();
        span.t1_sec = span.t0_sec + 1e-9 * static_cast<double>(busy);
        std::lock_guard<std::mutex> lock(ws.mutex);
        ws.spans.push_back(span);
      }
    }
  }

  size_t n_threads_ = 1;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;

  const Clock::time_point created_;
  std::atomic<uint64_t> parallel_for_calls_{0};
  std::atomic<uint64_t> inline_ranges_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> queue_wait_ns_{0};
  std::atomic<uint64_t> busy_ns_{0};
  std::atomic<size_t> queue_depth_max_{0};
  std::atomic<bool> timeline_enabled_{false};
  mutable std::mutex marks_mutex_;
  std::vector<TimelineMark> marks_;
};

}  // namespace dtp
