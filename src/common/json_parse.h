// Minimal recursive-descent JSON parser (no external deps, DESIGN.md §5).
//
// The production complement of JsonWriter: `dtp_report` parses the JSONL/JSON
// run artifacts back, and the test suite validates every emitted artifact
// through the same code path (tests/json_test_util.h is an alias of this
// header).  Supports the full JSON value grammar; numbers are parsed as
// double; \u escapes are decoded to UTF-8 (surrogate pairs included).
//
// Serialization policy for non-finite numbers (see JsonWriter::value(double)):
// NaN and infinities are not representable in JSON and are *written* as
// `null`, so a reader must treat a null where a number is expected as
// "value was non-finite".  JsonValue::num_or() implements that convention.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dtp {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool has(const std::string& key) const {
    return is_object() && object.count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
  const JsonValue& at(size_t i) const { return array.at(i); }
  double num(const std::string& key) const { return object.at(key).number; }
  const std::string& str(const std::string& key) const {
    return object.at(key).string;
  }
  // Number field with a default for missing keys *and* for null (the
  // JsonWriter encoding of NaN/Inf).
  double num_or(const std::string& key, double dflt) const {
    if (!has(key)) return dflt;
    const JsonValue& v = at(key);
    return v.is_number() ? v.number : dflt;
  }
  std::string str_or(const std::string& key, const std::string& dflt) const {
    if (!has(key)) return dflt;
    const JsonValue& v = at(key);
    return v.kind == Kind::String ? v.string : dflt;
  }
};

class JsonParser {
 public:
  // Throws std::runtime_error on malformed input or trailing garbage.
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing characters");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned cp = parse_hex4();
            // Surrogate pair: a high surrogate must be followed by \uDC00-DFFF.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u')
                fail("unpaired surrogate");
              pos_ += 2;
              const unsigned lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("unpaired surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace dtp
