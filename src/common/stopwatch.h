// Wall-clock + process-CPU stopwatch used by the placer driver and the
// benchmark harness.
//
// Wall time is a steady_clock read.  CPU time is the process-wide
// user+system time across *all* threads (CLOCK_PROCESS_CPUTIME_ID where
// available), so for a phase that fans out over the thread pool
// cpu_elapsed / elapsed approximates the effective parallelism, and
// cpu >> wall flags a phase that is burning cores, while cpu << wall flags
// one that is blocked (IO, lock convoy, starved workers).
#pragma once

#include <chrono>
#include <ctime>

namespace dtp {

// Process-wide CPU seconds (user+sys, all threads) since an arbitrary epoch.
inline double process_cpu_sec() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() {
    start_ = Clock::now();
    cpu_start_ = process_cpu_sec();
  }

  double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_sec() * 1e3; }

  // Process CPU time accumulated since construction/reset().
  double cpu_elapsed_sec() const { return process_cpu_sec() - cpu_start_; }

  double cpu_elapsed_ms() const { return cpu_elapsed_sec() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double cpu_start_ = 0.0;
};

}  // namespace dtp
