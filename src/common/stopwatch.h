// Wall-clock stopwatch used by the placer driver and the benchmark harness.
#pragma once

#include <chrono>

namespace dtp {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_sec() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_sec() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dtp
